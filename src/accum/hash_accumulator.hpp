// Hash sparse-accumulator (§III-C): an open-addressing table sized by the
// maximum mask-row nnz rather than by the operation count, exploiting the
// paper's observation that with masking there can be at most
// max_i nnz(M[i,:]) output nonzeros per row. More space-efficient than the
// dense accumulator for large dimensions, which improves cache locality.
//
// Layout: parallel arrays keys_ / state_ / values_ with power-of-two
// capacity and linear probing. Staleness uses the same 2e / 2e+1 marker
// scheme as DenseAccumulator; a slot whose marker predates the current
// epoch is treated as empty. Because all inserts for a row happen in
// set_mask (before any lookup), probe chains for the current epoch are
// contiguous and lookups may stop at the first stale slot.
//
// Saturation (docs/ROBUSTNESS.md): an insert whose probe chain exceeds the
// probe limit signals a pathologically clustered table. The accumulator
// grows-and-rehashes (doubling, preserving the current row's live entries,
// counted in counters().rehashes) up to a growth bound; past the bound it
// throws AccumulatorSaturatedError, which the drivers turn into a dense-
// accumulator fallback for the offending row (Config::degrade_on_saturation).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "accum/accumulator.hpp"
#include "core/semiring.hpp"
#include "support/common.hpp"
#include "support/fault.hpp"

namespace tilq {

template <Semiring SR, class I, class Marker>
class HashAccumulator {
 public:
  using value_type = typename SR::value_type;
  using marker_type = Marker;

  static_assert(std::is_unsigned_v<Marker>,
                "marker type must be unsigned for well-defined overflow");

  /// `max_row_entries` is an upper bound on entries per row: the maximal
  /// mask-row nnz for masked use, or the maximal per-row FLOP count for
  /// unmasked (vanilla) use. The table is sized to keep the load factor
  /// at or below 50%.
  explicit HashAccumulator(I max_row_entries,
                           ResetPolicy policy = ResetPolicy::kMarker)
      : policy_(policy) {
    require(max_row_entries >= 0, "HashAccumulator: negative row bound");
    rebuild(static_cast<std::uint64_t>(max_row_entries));
  }

  /// Loads the mask row: inserts every column as an allowed slot. Throws
  /// AccumulatorSaturatedError when probing degenerates and the growth
  /// bound is exhausted (or the hash-sat fault site fires); the table holds
  /// no current-row accumulated values yet, so the row can be retried on a
  /// fallback accumulator after abort_row().
  void set_mask(std::span<const I> mask_cols) {
    if (fault::should_fire(FaultSite::kHashSaturation)) {
      throw AccumulatorSaturatedError(
          "hash accumulator saturated (injected fault: hash-sat)");
    }
    grow_if_needed(mask_cols.size());
    for (const I j : mask_cols) {
      for (;;) {
        const Marker tag = mask_tag();
        std::size_t slot = home(j);
        std::size_t chain = 0;
        while (state_[slot] >= tag && keys_[slot] != j) {
          slot = (slot + 1) & mask_;
          ++counters_.probes;
          if (++chain > probe_limit_) {
            break;
          }
        }
        if (chain > probe_limit_) {
          grow_rehash();  // throws past the growth bound
          continue;       // retry this key against the regrown table
        }
#if TILQ_METRICS_ENABLED
        if (chain != 0) {
          ++counters_.collisions;
        }
#endif
        keys_[slot] = j;
        state_[slot] = tag;
        values_[slot] = SR::zero();
        if (policy_ == ResetPolicy::kExplicit) {
          row_slots_.push_back(slot);
        }
        break;
      }
    }
  }

  /// Adds `product` into the slot for `col` iff the mask allows it.
  bool accumulate(I col, value_type product) noexcept {
    const std::size_t slot = find(col);
    if (slot == kNotFound) {
#if TILQ_METRICS_ENABLED
      ++counters_.rejects;
#endif
      return false;
    }
#if TILQ_METRICS_ENABLED
    ++counters_.inserts;
#endif
    state_[slot] = touched_tag();
    values_[slot] = SR::add(values_[slot], product);
    return true;
  }

  [[nodiscard]] bool is_masked(I col) const noexcept {
    return find(col) != kNotFound;
  }

  /// Emits `(col, value)` for every touched slot, in mask order.
  template <class EmitFn>
  void gather(std::span<const I> mask_cols, EmitFn&& emit) const {
    for (const I j : mask_cols) {
      const std::size_t slot = find(j);
      if (slot != kNotFound && state_[slot] == touched_tag()) {
        emit(j, values_[slot]);
      }
    }
  }

  void finish_row(std::span<const I> /*mask_cols*/) noexcept {
    if (policy_ == ResetPolicy::kExplicit) {
#if TILQ_METRICS_ENABLED
      counters_.explicit_clears += row_slots_.size();
#endif
      // Clear exactly the slots this row occupied (recorded at insertion).
      // Clearing by key lookup instead would break probe chains — the
      // classic open-addressing deletion hazard — leaving unreachable ghost
      // entries that eventually fill the table.
      for (const std::size_t slot : row_slots_) {
        state_[slot] = Marker{0};
      }
      row_slots_.clear();
      unmasked_touched_.clear();
      return;
    }
    unmasked_touched_.clear();
#if TILQ_METRICS_ENABLED
    ++counters_.row_resets;
#endif
    // The marker-wrap fault site forces the overflow full-reset path at any
    // width; results must be unchanged (the wrap is correctness-preserving).
    if (epoch_ >= max_epoch() ||
        fault::should_fire(FaultSite::kMarkerWrap)) {
      std::fill(state_.begin(), state_.end(), Marker{0});
      epoch_ = 1;
      ++counters_.full_resets;
    } else {
      ++epoch_;
    }
  }

  /// Discards the current row's partial state after a mid-row failure so
  /// the next set_mask starts from a clean epoch — the drivers call this
  /// before recomputing a saturated row on the dense fallback. Same
  /// invalidation as finish_row, but an aborted row is not a completed row,
  /// so the per-row metrics stay untouched.
  void abort_row() noexcept {
    unmasked_touched_.clear();
    if (policy_ == ResetPolicy::kExplicit) {
      for (const std::size_t slot : row_slots_) {
        state_[slot] = Marker{0};
      }
      row_slots_.clear();
      return;
    }
    if (epoch_ >= max_epoch()) {
      std::fill(state_.begin(), state_.end(), Marker{0});
      epoch_ = 1;
      ++counters_.full_resets;
    } else {
      ++epoch_;
    }
  }

  // --- unmasked (vanilla, Fig 3) protocol -------------------------------

  /// Starts an unmasked row; the table is regrown to hold up to
  /// `flop_upper_bound` distinct columns.
  void begin_unmasked_row(I flop_upper_bound) {
    if (fault::should_fire(FaultSite::kHashSaturation)) {
      throw AccumulatorSaturatedError(
          "hash accumulator saturated (injected fault: hash-sat)");
    }
    grow_if_needed(static_cast<std::size_t>(flop_upper_bound));
    unmasked_touched_.clear();
  }

  void accumulate_any(I col, value_type product) {
#if TILQ_METRICS_ENABLED
    ++counters_.inserts;
#endif
    for (;;) {
      const Marker tag = mask_tag();
      std::size_t slot = home(col);
      std::size_t chain = 0;
      while (state_[slot] >= tag && keys_[slot] != col) {
        slot = (slot + 1) & mask_;
        ++counters_.probes;
        if (++chain > probe_limit_) {
          break;
        }
      }
      if (chain > probe_limit_) {
        // Grow-and-rehash preserves the row's accumulated values, so the
        // retry continues the same reduction with no reordering.
        grow_rehash();
        continue;
      }
#if TILQ_METRICS_ENABLED
      if (chain != 0) {
        ++counters_.collisions;
      }
#endif
      if (state_[slot] >= tag) {  // existing current-epoch entry
        values_[slot] = SR::add(values_[slot], product);
      } else {
        keys_[slot] = col;
        state_[slot] = touched_tag();
        values_[slot] = product;
        unmasked_touched_.push_back(col);
        if (policy_ == ResetPolicy::kExplicit) {
          row_slots_.push_back(slot);
        }
      }
      return;
    }
  }

  template <class EmitFn>
  void gather_unmasked(EmitFn&& emit) {
    std::sort(unmasked_touched_.begin(), unmasked_touched_.end());
    for (const I j : unmasked_touched_) {
      const std::size_t slot = find(j);
      assert(slot != kNotFound);
      emit(j, values_[slot]);
    }
  }

  [[nodiscard]] const AccumulatorCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return keys_.size(); }
  [[nodiscard]] ResetPolicy policy() const noexcept { return policy_; }

 private:
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  [[nodiscard]] std::size_t home(I key) const noexcept {
    // Fibonacci (multiplicative) hashing on the column index.
    const auto h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> shift_);
  }

  /// Finds the slot holding `key` for the current epoch, or kNotFound. The
  /// chain scan stops at the first stale/empty slot.
  [[nodiscard]] std::size_t find(I key) const noexcept {
    const Marker tag = mask_tag();
    std::size_t slot = home(key);
    while (state_[slot] >= tag) {
      if (keys_[slot] == key) {
        return slot;
      }
      slot = (slot + 1) & mask_;
    }
    return kNotFound;
  }

  [[nodiscard]] Marker mask_tag() const noexcept {
    return static_cast<Marker>(2 * epoch_);
  }
  [[nodiscard]] Marker touched_tag() const noexcept {
    return static_cast<Marker>(2 * epoch_ + 1);
  }
  [[nodiscard]] static constexpr std::uint64_t max_epoch() noexcept {
    return (std::numeric_limits<Marker>::max() - 1) / 2;
  }

  /// Planned (re)sizing for a known entry bound: fresh table at <=50% load,
  /// and a fresh saturation budget (kMaxGrowthDoublings doublings beyond
  /// this capacity before AccumulatorSaturatedError).
  void rebuild(std::uint64_t max_entries) {
    const std::uint64_t capacity = next_pow2(std::max<std::uint64_t>(4, 2 * max_entries));
    allocate(capacity);
    growth_limit_ = capacity << kMaxGrowthDoublings;
  }

  void allocate(std::uint64_t capacity) {
    keys_.assign(static_cast<std::size_t>(capacity), I{});
    state_.assign(static_cast<std::size_t>(capacity), Marker{0});
    values_.assign(static_cast<std::size_t>(capacity), SR::zero());
    mask_ = static_cast<std::size_t>(capacity) - 1;
    shift_ = 64 - floor_log2(capacity);
    probe_limit_ = std::max<std::size_t>(kMinProbeLimit,
                                         static_cast<std::size_t>(capacity) / 4);
    epoch_ = 1;
    row_slots_.clear();
  }

  /// Saturation response: doubles the table and reinserts the current
  /// row's live entries (older epochs are stale by definition), preserving
  /// each slot's partial sum so the retried reduction is bit-identical.
  /// Throws AccumulatorSaturatedError once the growth budget is spent.
  void grow_rehash() {
    const std::uint64_t target = static_cast<std::uint64_t>(keys_.size()) * 2;
    if (target > growth_limit_) {
      throw AccumulatorSaturatedError(
          "hash accumulator saturated: probe limit breached and the "
          "grow-and-rehash bound is exhausted — degrade to the dense "
          "accumulator or replan with a larger row bound");
    }
    const Marker old_mask_tag = mask_tag();
    const Marker old_touched_tag = touched_tag();
    std::vector<I> old_keys = std::move(keys_);
    std::vector<Marker> old_state = std::move(state_);
    std::vector<value_type> old_values = std::move(values_);
    allocate(target);
    for (std::size_t s = 0; s < old_keys.size(); ++s) {
      if (old_state[s] < old_mask_tag) {
        continue;  // stale epoch — dead entry
      }
      const I key = old_keys[s];
      std::size_t slot = home(key);
      while (state_[slot] != Marker{0}) {
        slot = (slot + 1) & mask_;
      }
      keys_[slot] = key;
      state_[slot] = old_state[s] == old_touched_tag ? touched_tag() : mask_tag();
      values_[slot] = old_values[s];
      if (policy_ == ResetPolicy::kExplicit) {
        row_slots_.push_back(slot);
      }
    }
    ++counters_.rehashes;
  }

  void grow_if_needed(std::size_t entries) {
    if (2 * entries > keys_.size()) {
      rebuild(entries);
    }
  }

  /// Probe-chain length past which an insert declares the table saturated.
  static constexpr std::size_t kMinProbeLimit = 16;
  /// Doublings allowed beyond the planned capacity before escalating.
  static constexpr unsigned kMaxGrowthDoublings = 4;

  ResetPolicy policy_;
  std::uint64_t epoch_ = 1;
  std::size_t mask_ = 0;
  unsigned shift_ = 0;
  std::size_t probe_limit_ = kMinProbeLimit;
  std::uint64_t growth_limit_ = 0;
  std::vector<I> keys_;
  std::vector<Marker> state_;
  std::vector<value_type> values_;
  std::vector<I> unmasked_touched_;
  /// Slots occupied by the current row — only tracked under kExplicit, to
  /// make the per-row reset exact (see finish_row).
  std::vector<std::size_t> row_slots_;
  AccumulatorCounters counters_;
};

}  // namespace tilq
