// Sparse-accumulator interface shared by the dense and hash implementations
// (§III-C). An accumulator stores the partial sums for one output row and
// encodes the mask row so the linear-scan kernels can test membership in
// O(1).
//
// Row protocol (masked kernels, Figs 5/7/9):
//   1. set_mask(M.row_cols(i))        — load the mask into the accumulator
//   2. accumulate(col, product) ...   — add products that hit the mask
//   3. gather(M.row_cols(i), emit)    — emit touched entries in mask order
//   4. finish_row(M.row_cols(i))      — reset state for the next row
//
// Row protocol (vanilla kernel, Fig 3 — no mask pre-load):
//   1. begin_unmasked_row(flop_upper_bound)
//   2. accumulate_any(col, product) ...
//   3. gather_unmasked(emit)          — sorted by column
//   4. finish_row({})
//
// State reset (§III-C):
//   - ResetPolicy::kMarker    — SuiteSparse:GraphBLAS style: a per-slot
//     epoch marker is bumped per row; slots become implicitly invalid.
//     Marker width is tunable (Fig 13); overflow triggers a full reset.
//   - ResetPolicy::kExplicit  — GrB style: all mask slots are cleared
//     explicitly after each row.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>

#include "support/errors.hpp"
#include "support/metrics.hpp"  // TILQ_METRICS_ENABLED gate for the counters

namespace tilq {

/// How accumulator state is invalidated between output rows.
enum class ResetPolicy {
  kMarker,    ///< epoch marker, implicit invalidation, overflow => full reset
  kExplicit,  ///< clear every mask slot after each row
};

[[nodiscard]] constexpr const char* to_string(ResetPolicy policy) noexcept {
  return policy == ResetPolicy::kMarker ? "marker" : "explicit";
}

/// Which accumulator implementation to use (runtime selector).
enum class AccumulatorKind {
  kDense,   ///< value/state vectors of length n (matrix columns)
  kHash,    ///< open-addressing table sized by max mask row nnz
  kBitmap,  ///< 1-bit flags + dense values; explicit reset (tilq extension)
};

[[nodiscard]] constexpr const char* to_string(AccumulatorKind kind) noexcept {
  switch (kind) {
    case AccumulatorKind::kDense:
      return "dense";
    case AccumulatorKind::kHash:
      return "hash";
    case AccumulatorKind::kBitmap:
      return "bitmap";
  }
  return "?";
}

/// Marker bit-width for the lazy-reset state arrays (Fig 13 sweep).
enum class MarkerWidth : int {
  k8 = 8,
  k16 = 16,
  k32 = 32,
  k64 = 64,
};

[[nodiscard]] constexpr int bits(MarkerWidth width) noexcept {
  return static_cast<int>(width);
}

/// Statistics an accumulator optionally reports — used by tests asserting
/// the overflow/reset trade-off, by the microbenchmarks, and flushed into
/// the global metrics registry (support/metrics.hpp) by the SpGEMM
/// drivers. `full_resets` and `probes` are always maintained; the rest are
/// compiled in only with TILQ_METRICS_ENABLED (docs/METRICS.md).
struct AccumulatorCounters {
  std::uint64_t full_resets = 0;     ///< marker overflows => whole-array resets
  std::uint64_t probes = 0;          ///< hash probe steps (collision metric)
  std::uint64_t inserts = 0;         ///< accumulate calls that hit the mask
  std::uint64_t rejects = 0;         ///< accumulate calls outside the mask
  std::uint64_t collisions = 0;      ///< hash insertions needing >=1 probe step
  std::uint64_t row_resets = 0;      ///< marker-policy finish_row epoch bumps
  std::uint64_t explicit_clears = 0; ///< slots cleared by explicit resets
  std::uint64_t rehashes = 0;        ///< hash grow-and-rehash events (saturation)
};

/// Thrown (CapacityError subtype) when the hash accumulator's probe chains
/// breach its limit and growing the table past its bound would not help —
/// or when the hash-sat fault site (support/fault.hpp) forces that path.
/// The drivers catch this and degrade the offending row/cell to the dense
/// accumulator when Config::degrade_on_saturation is set (the default).
class AccumulatorSaturatedError : public CapacityError {
 public:
  using CapacityError::CapacityError;
};

/// Compile-time interface check used by the kernels.
template <class Acc, class I>
concept MaskedAccumulator = requires(Acc acc, I col,
                                     typename Acc::value_type value,
                                     std::span<const I> mask_cols) {
  typename Acc::value_type;
  acc.set_mask(mask_cols);
  { acc.accumulate(col, value) } -> std::same_as<bool>;
  { acc.is_masked(col) } -> std::same_as<bool>;
  acc.finish_row(mask_cols);
};

}  // namespace tilq
