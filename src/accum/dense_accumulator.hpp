// Dense sparse-accumulator (§III-C): a value vector and a marker ("state")
// vector of length n = columns of the output. Preferred when the matrix
// dimension is small or writes have spatial locality.
//
// Marker scheme (SuiteSparse:GraphBLAS style, relaxed to narrow widths as in
// the paper): per output row, an epoch e >= 1 is assigned and
//     state_[j] == 2e     means "j is in the mask, no product landed yet"
//     state_[j] == 2e + 1 means "j is in the mask and has a partial sum"
// Anything else is stale. finish_row() bumps the epoch; when 2e+1 would
// overflow the marker type the whole state vector is zeroed (the paper's
// width-vs-reset-time trade, Fig 13). With ResetPolicy::kExplicit the mask
// slots are cleared after every row instead (GrB style) and the epoch never
// moves.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "accum/accumulator.hpp"
#include "core/semiring.hpp"
#include "support/common.hpp"
#include "support/fault.hpp"

namespace tilq {

template <Semiring SR, class I, class Marker>
class DenseAccumulator {
 public:
  using value_type = typename SR::value_type;
  using marker_type = Marker;

  static_assert(std::is_unsigned_v<Marker>,
                "marker type must be unsigned for well-defined overflow");

  /// `cols` is the column count of the output matrix; the dense accumulator
  /// always allocates the full range.
  explicit DenseAccumulator(I cols, ResetPolicy policy = ResetPolicy::kMarker)
      : policy_(policy),
        values_(checked_size(cols), SR::zero()),
        state_(checked_size(cols), Marker{0}) {}

  /// Loads the mask row: marks every listed column as an allowed output slot
  /// and resets its partial sum.
  void set_mask(std::span<const I> mask_cols) noexcept {
    const Marker tag = mask_tag();
    for (const I j : mask_cols) {
      state_[static_cast<std::size_t>(j)] = tag;
      values_[static_cast<std::size_t>(j)] = SR::zero();
    }
  }

  /// Adds `product` into slot `col` iff the mask allows it. Returns whether
  /// the product hit the mask (Fig 5's "if acc[i,j] is not masked" test —
  /// note the paper's pseudo-code reads "not masked" but means "present in
  /// the mask").
  bool accumulate(I col, value_type product) noexcept {
    const auto j = static_cast<std::size_t>(col);
    const Marker s = state_[j];
    if (s == touched_tag()) {
#if TILQ_METRICS_ENABLED
      ++counters_.inserts;
#endif
      values_[j] = SR::add(values_[j], product);
      return true;
    }
    if (s == mask_tag()) {
#if TILQ_METRICS_ENABLED
      ++counters_.inserts;
#endif
      state_[j] = touched_tag();
      values_[j] = SR::add(values_[j], product);
      return true;
    }
#if TILQ_METRICS_ENABLED
    ++counters_.rejects;
#endif
    return false;
  }

  /// True iff `col` is an allowed output slot for the current row.
  [[nodiscard]] bool is_masked(I col) const noexcept {
    const Marker s = state_[static_cast<std::size_t>(col)];
    return s == mask_tag() || s == touched_tag();
  }

  /// Emits `(col, value)` for every touched slot, in mask order (so output
  /// rows stay sorted when the mask row is sorted).
  template <class EmitFn>
  void gather(std::span<const I> mask_cols, EmitFn&& emit) const {
    for (const I j : mask_cols) {
      if (state_[static_cast<std::size_t>(j)] == touched_tag()) {
        emit(j, values_[static_cast<std::size_t>(j)]);
      }
    }
  }

  /// Invalidates the row's state according to the reset policy. For the
  /// marker policy `mask_cols` is unused.
  void finish_row(std::span<const I> mask_cols) noexcept {
    if (policy_ == ResetPolicy::kExplicit) {
#if TILQ_METRICS_ENABLED
      counters_.explicit_clears += mask_cols.size() + unmasked_touched_.size();
#endif
      for (const I j : mask_cols) {
        state_[static_cast<std::size_t>(j)] = Marker{0};
      }
      for (const I j : unmasked_touched_) {
        state_[static_cast<std::size_t>(j)] = Marker{0};
      }
      unmasked_touched_.clear();
      return;
    }
    unmasked_touched_.clear();
#if TILQ_METRICS_ENABLED
    ++counters_.row_resets;
#endif
    // The marker-wrap fault site forces the overflow full-reset path at any
    // width; results must be unchanged (the wrap is correctness-preserving).
    if (epoch_ >= max_epoch() ||
        fault::should_fire(FaultSite::kMarkerWrap)) {
      std::fill(state_.begin(), state_.end(), Marker{0});
      epoch_ = 1;
      ++counters_.full_resets;
    } else {
      ++epoch_;
    }
  }

  // --- unmasked (vanilla, Fig 3) protocol -------------------------------

  /// Starts an unmasked row. The dense accumulator needs no sizing hint.
  void begin_unmasked_row(I /*flop_upper_bound*/) { unmasked_touched_.clear(); }

  /// Adds `product` into slot `col` unconditionally, tracking first touches
  /// so gather_unmasked can find them.
  void accumulate_any(I col, value_type product) {
#if TILQ_METRICS_ENABLED
    ++counters_.inserts;
#endif
    const auto j = static_cast<std::size_t>(col);
    if (state_[j] == touched_tag()) {
      values_[j] = SR::add(values_[j], product);
    } else {
      state_[j] = touched_tag();
      values_[j] = product;
      unmasked_touched_.push_back(col);
    }
  }

  /// Emits all touched slots sorted by column.
  template <class EmitFn>
  void gather_unmasked(EmitFn&& emit) {
    std::sort(unmasked_touched_.begin(), unmasked_touched_.end());
    for (const I j : unmasked_touched_) {
      emit(j, values_[static_cast<std::size_t>(j)]);
    }
  }

  [[nodiscard]] const AccumulatorCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] ResetPolicy policy() const noexcept { return policy_; }

 private:
  /// Validates `cols` before any vector is constructed (member initializers
  /// run before the constructor body, so the check cannot live there).
  [[nodiscard]] static std::size_t checked_size(I cols) {
    require(cols >= 0, "DenseAccumulator: negative column count");
    return static_cast<std::size_t>(cols);
  }

  [[nodiscard]] Marker mask_tag() const noexcept {
    return static_cast<Marker>(2 * epoch_);
  }
  [[nodiscard]] Marker touched_tag() const noexcept {
    return static_cast<Marker>(2 * epoch_ + 1);
  }
  /// Largest epoch whose touched tag still fits the marker type.
  [[nodiscard]] static constexpr std::uint64_t max_epoch() noexcept {
    return (std::numeric_limits<Marker>::max() - 1) / 2;
  }

  ResetPolicy policy_;
  std::uint64_t epoch_ = 1;
  std::vector<value_type> values_;
  std::vector<Marker> state_;
  std::vector<I> unmasked_touched_;
  AccumulatorCounters counters_;
};

}  // namespace tilq
