#!/usr/bin/env python3
"""Validate Prometheus text-exposition scrapes of the tilq telemetry
exporter (docs/TELEMETRY.md) — the CI telemetry-smoke contract.

Usage:
  check_prometheus.py SCRAPE [SCRAPE2] [--require NAME]...

With one file: parse the exposition strictly — every sample line must
parse as `name[{labels}] value`, carry a finite value, and be preceded
by a `# TYPE` line for its metric; `# TYPE` declarations must be one of
counter/gauge.

With two files (two scrapes of the same process, second taken later):
additionally assert that every counter-typed series present in both
scrapes is monotonically non-decreasing — the property Prometheus
`rate()` relies on.

--require NAME (repeatable) asserts the named metric has at least one
sample in every given scrape.

Exits non-zero with a readable message on the first violation class.
"""

import argparse
import math
import sys


def parse_exposition(path: str):
    """Returns ({series_key: value}, {metric_name: type}). A series key is
    the full `name{labels}` string; the bare name indexes the type map."""
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    errors: list[str] = []
    for number, raw in enumerate(open(path, encoding="utf-8"), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge"):
                errors.append(f"{path}:{number}: malformed TYPE line: {line}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        fields = line.rsplit(None, 1)
        if len(fields) != 2:
            errors.append(f"{path}:{number}: malformed sample line: {line}")
            continue
        series, value_text = fields
        name = series.split("{", 1)[0]
        if not name or not name.replace("_", "a").isalnum():
            errors.append(f"{path}:{number}: bad metric name: {series}")
            continue
        try:
            value = float(value_text)
        except ValueError:
            errors.append(f"{path}:{number}: unparsable value: {line}")
            continue
        if not math.isfinite(value):
            errors.append(f"{path}:{number}: non-finite value: {line}")
            continue
        if name not in types:
            errors.append(
                f"{path}:{number}: sample without preceding TYPE: {name}")
            continue
        samples[series] = value
    if not samples:
        errors.append(f"{path}: no samples parsed")
    return samples, types, errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scrapes", nargs="+", help="1 or 2 exposition files")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="metric that must be present in every scrape")
    args = parser.parse_args()
    if len(args.scrapes) > 2:
        parser.error("at most two scrape files")

    bad = False
    parsed = []
    for path in args.scrapes:
        samples, types, errors = parse_exposition(path)
        for error in errors:
            print(error)
            bad = True
        parsed.append((path, samples, types))
        for name in args.require:
            if not any(key.split("{", 1)[0] == name for key in samples):
                print(f"{path}: required metric absent: {name}")
                bad = True

    if len(parsed) == 2:
        (path1, first, types1), (path2, second, types2) = parsed
        if types1 != types2:
            print(f"{path1} and {path2} disagree on metric types")
            bad = True
        regressions = []
        for series, before in first.items():
            name = series.split("{", 1)[0]
            if types1.get(name) != "counter" or series not in second:
                continue
            if second[series] < before:
                regressions.append((series, before, second[series]))
        for series, before, after in sorted(regressions):
            print(f"counter went backwards: {series} {before} -> {after}")
            bad = True

    if bad:
        return 1
    counted = sum(len(samples) for _, samples, _ in parsed)
    print(f"ok: {counted} samples across {len(parsed)} scrape(s), "
          f"format valid" +
          (", counters monotonic" if len(parsed) == 2 else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
