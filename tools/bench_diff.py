#!/usr/bin/env python3
"""Compare two metrics snapshots and flag performance regressions.

A snapshot is a JSON-lines file of tilq metrics records (docs/METRICS.md,
schema version >= 1) as written by `tools/bench_snapshot.py` (the
`tilq_bench_snapshot` CMake target) or by any bench binary running with
TILQ_METRICS=<path>. Records are grouped by (source, matrix, config);
repeated records for the same key are collapsed to their median
`median_ms`, which suppresses one-off noise between runs.

Per-key verdicts:
  REGRESSION  new median slower by more than --threshold (relative)
  IMPROVED    new median faster by more than --threshold
  OK          within the noise band
  NEW / GONE  key present in only one snapshot (informational)

The exit code is the contract CI relies on: non-zero iff at least one
REGRESSION (missing keys alone do not fail the diff). The work counters
ride along as a second signal: the kernel is deterministic, so a change
in flops-per-run means the *work* changed, not the machine — those are
flagged even when the timing stayed inside the noise band.

    bench_diff.py BASELINE.json CURRENT.json [--threshold 0.10]
    bench_diff.py --self-test     # harness check, used by CTest
"""

import argparse
import json
import statistics
import sys


def load_snapshot(path: str) -> dict:
    """{(source, matrix, config): {"ms": median, "flops": per-run flops}}"""
    groups = {}
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                sys.exit(f"{path}:{line_no}: not valid JSON: {error}")
            if "tilq_metrics" not in record:
                continue  # foreign line in a shared sink: skip, don't fail
            key = (record.get("source", ""), record.get("matrix", ""),
                   record.get("config", ""))
            runs = max(1, record.get("runs", 1))
            flops = (record.get("counters") or {}).get("flops", 0) / runs
            groups.setdefault(key, []).append(
                {"ms": record.get("median_ms", 0.0), "flops": flops})
    if not groups:
        sys.exit(f"{path}: no tilq metrics records found")
    return {
        key: {
            "ms": statistics.median(r["ms"] for r in records),
            "flops": statistics.median(r["flops"] for r in records),
        }
        for key, records in groups.items()
    }


def diff_snapshots(baseline: dict, current: dict, threshold: float) -> list:
    """[(key, verdict, detail)] for every key in either snapshot."""
    results = []
    for key in sorted(set(baseline) | set(current)):
        if key not in current:
            results.append((key, "GONE", "key absent from current snapshot"))
            continue
        if key not in baseline:
            results.append((key, "NEW", "key absent from baseline snapshot"))
            continue
        old, new = baseline[key], current[key]
        if old["ms"] <= 0.0:
            results.append((key, "OK", "baseline time is zero; skipped"))
            continue
        change = (new["ms"] - old["ms"]) / old["ms"]
        detail = f"{old['ms']:.3f} ms -> {new['ms']:.3f} ms ({change:+.1%})"
        if old["flops"] > 0 and abs(new["flops"] - old["flops"]) > \
                0.01 * old["flops"]:
            detail += (f"; WORK CHANGED: {old['flops']:.0f} -> "
                       f"{new['flops']:.0f} flops/run")
        if change > threshold:
            results.append((key, "REGRESSION", detail))
        elif change < -threshold:
            results.append((key, "IMPROVED", detail))
        else:
            results.append((key, "OK", detail))
    return results


def report(results: list) -> int:
    regressions = 0
    for (source, matrix, config), verdict, detail in results:
        print(f"{verdict:10s} {source} | {matrix} | {config}")
        print(f"           {detail}")
        regressions += verdict == "REGRESSION"
    total = len(results)
    print(f"\n{total} configuration(s) compared, {regressions} regression(s)")
    return 1 if regressions else 0


def synthetic_record(matrix: str, config: str, median_ms: float,
                     flops: int = 120000) -> str:
    return json.dumps({
        "tilq_metrics": 2, "source": "selftest", "matrix": matrix,
        "config": config, "runs": 4, "median_ms": median_ms,
        "counters": {"flops": 4 * flops}, "hw": None, "imbalance": None,
        "threads": [],
    })


def self_test() -> int:
    """Build synthetic snapshots and check every verdict path."""
    import tempfile

    def write(lines):
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        handle.write("\n".join(lines) + "\n")
        handle.close()
        return handle.name

    base = write([
        synthetic_record("graphA", "cfg1", 10.0),
        synthetic_record("graphA", "cfg1", 10.2),  # repeat: median collapses
        synthetic_record("graphA", "cfg2", 5.0),
        synthetic_record("graphB", "cfg1", 2.0),
    ])
    # cfg1/graphA slowed by 50% (the injected regression), cfg2 within
    # noise, graphB improved beyond the threshold.
    current = write([
        synthetic_record("graphA", "cfg1", 15.0),
        synthetic_record("graphA", "cfg2", 5.2),
        synthetic_record("graphB", "cfg1", 1.0, flops=90000),
    ])

    results = diff_snapshots(load_snapshot(base), load_snapshot(current),
                             threshold=0.10)
    verdicts = {key: verdict for key, verdict, _ in results}
    expected = {
        ("selftest", "graphA", "cfg1"): "REGRESSION",
        ("selftest", "graphA", "cfg2"): "OK",
        ("selftest", "graphB", "cfg1"): "IMPROVED",
    }
    if verdicts != expected:
        print(f"self-test FAILED: got {verdicts}, expected {expected}")
        return 1
    if report(results) != 1:
        print("self-test FAILED: injected regression did not set exit code")
        return 1
    details = {key: detail for key, _, detail in results}
    if "WORK CHANGED" not in details[("selftest", "graphB", "cfg1")]:
        print("self-test FAILED: flop drift not flagged")
        return 1

    # A snapshot diffed against itself must be all-OK with exit 0.
    clean = diff_snapshots(load_snapshot(base), load_snapshot(base), 0.10)
    if any(verdict != "OK" for _, verdict, _ in clean) or report(clean) != 0:
        print("self-test FAILED: identical snapshots did not compare clean")
        return 1
    print("self-test passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline snapshot (JSON lines)")
    parser.add_argument("current", nargs="?", help="current snapshot (JSON lines)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown tolerated as noise "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the harness itself (synthetic data)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("need BASELINE and CURRENT snapshots (or --self-test)")
    results = diff_snapshots(load_snapshot(args.baseline),
                             load_snapshot(args.current), args.threshold)
    return report(results)


if __name__ == "__main__":
    sys.exit(main())
