#!/usr/bin/env python3
"""Doc-lint: no user-facing doc may name an identifier the code lost.

Scans README.md, EXPERIMENTS.md, and docs/*.md for *code-like* backticked
spans — qualified names (`tilq::Engine`), call expressions (`submit()`),
and CamelCase type names (`ExecutionStats`) — and checks that every
identifier component still occurs somewhere in the source tree (src/,
tests/, bench/, examples/, tools/, CMake files). This is how the
`[[deprecated]]` overloads API.md once described, or a pipeline stage
ARCHITECTURE.md drew before a refactor, get caught the moment the code
moves on.

Deliberately one-directional and lexical: it does not demand docs cover
the code (doc_metrics_lint does that for the observability and engine
surfaces) and it does not parse C++ — an identifier "exists" if the
token appears in any scanned source file. Lowercase prose words, flag
names, and file paths in backticks are ignored; only spans that look
like code are held to the standard.

Registered as the `doc_identifier_lint` CTest entry (skipped when
python3 is absent).
"""

import argparse
import pathlib
import re
import sys

DOC_GLOBS = ["README.md", "EXPERIMENTS.md", "docs/*.md"]
SOURCE_GLOBS = [
    "src/**/*.hpp", "src/**/*.cpp", "tests/**/*.cpp", "tests/**/*.hpp",
    "bench/**/*.cpp", "bench/**/*.hpp", "examples/**/*.cpp",
    "examples/**/*.hpp", "tools/*.py", "CMakeLists.txt",
    "**/CMakeLists.txt", ".github/workflows/*.yml",
]

# Tokens that look like identifiers but belong to the toolchain or the
# environment rather than this tree.
ALLOWED = {
    "std", "omp", "gtest", "GoogleTest", "OpenMP", "CMake", "CTest",
    "JSON", "CSR", "CSV", "GraphBLAS", "SpGEMM", "MaskedSpGEMM",
    "LaTeX", "TSan", "ASan", "UBSan", "GCC", "Clang", "POSIX",
}


def code_like(span: str) -> bool:
    """A backticked span is held to the identifier standard if it is a
    qualified name, a call, or a CamelCase word — not prose, paths,
    flags, or env assignments."""
    if "/" in span or span.startswith("-") or "=" in span or " " in span:
        return False
    if "::" in span or span.endswith("()"):
        return True
    word = span.rstrip("()")
    return bool(re.fullmatch(r"[A-Z][A-Za-z0-9]*", word)
                and re.search(r"[a-z]", word)
                and re.search(r"[A-Z].*[A-Z]", word + "A"))


def doc_identifiers(path: pathlib.Path) -> dict[str, list[int]]:
    """Map identifier component -> line numbers where a code-like
    backticked span names it."""
    found: dict[str, list[int]] = {}
    text = path.read_text(encoding="utf-8")
    # Drop fenced code blocks: they flip inline-span parity, and example
    # code is allowed pseudo-identifiers (loop variables, ellipses).
    text = re.sub(r"```.*?```", lambda m: "\n" * m.group(0).count("\n"),
                  text, flags=re.DOTALL)
    for lineno, line in enumerate(text.splitlines(), start=1):
        for span in re.findall(r"`([^`]+)`", line):
            if not code_like(span):
                continue
            for token in re.findall(r"\w+", span):
                if token.isdigit() or token in ALLOWED:
                    continue
                # `Csr::row_*` style wildcards: the token before the star
                # is a prefix claim, recorded with a trailing star.
                if f"{token}*" in span:
                    token += "*"
                found.setdefault(token, []).append(lineno)
    return found


def source_tokens(root: pathlib.Path) -> set[str]:
    tokens: set[str] = set()
    seen: set[pathlib.Path] = set()
    for glob in SOURCE_GLOBS:
        for path in root.glob(glob):
            if "build" in path.parts or path in seen or not path.is_file():
                continue
            seen.add(path)
            tokens |= set(re.findall(
                r"\w+", path.read_text(encoding="utf-8", errors="replace")))
    if not tokens:
        sys.exit(f"{root}: no source files matched — wrong --root?")
    return tokens


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root to scan")
    args = parser.parse_args()
    root = pathlib.Path(args.root)

    known = source_tokens(root)
    bad = 0
    docs = 0
    checked = 0
    for glob in DOC_GLOBS:
        for doc in sorted(root.glob(glob)):
            docs += 1
            for token, lines in sorted(doc_identifiers(doc).items()):
                checked += 1
                if token.endswith("*"):
                    resolved = any(name.startswith(token[:-1])
                                   for name in known)
                else:
                    resolved = token in known
                if not resolved:
                    where = ", ".join(str(n) for n in lines[:4])
                    print(f"{doc.relative_to(root)}:{where}: "
                          f"`{token}` is not defined anywhere in the tree")
                    bad += 1
    if docs == 0:
        sys.exit(f"{root}: no docs matched — wrong --root?")
    if bad:
        print(f"{bad} stale identifier(s); rename the doc reference or "
              "whitelist toolchain names in ALLOWED")
        return 1
    print(f"ok: {checked} distinct code-like identifiers across {docs} "
          "docs all resolve to the source tree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
