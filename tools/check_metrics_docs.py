#!/usr/bin/env python3
"""Doc-lint: keep docs/METRICS.md and the observability headers in sync.

Checks, in both directions:
  * every counter field of MetricCounters (src/support/metrics.hpp)
    appears (backticked) in the table under '## Counters', and every
    counter that table names exists as a field;
  * every fault site the implementation names (the to_string table in
    src/support/fault.cpp) appears in docs/ROBUSTNESS.md's site table
    and vice versa, and the degradation and resilience counters
    (`accum_*`, `engine_retries`, `engine_brownouts`) plus the
    `tilq_engine_health` gauge are documented there;
  * every hardware counter field of HwCounters (src/support/perf.hpp)
    appears in the table under '## Hardware counters', and vice versa;
  * every field the `imbalance` record object emits (scraped from
    append_imbalance_json in src/support/metrics.cpp) appears in the
    table under '## Load imbalance', and vice versa;
  * the schema version the doc advertises ("schema version N" and the
    `"tilq_metrics":N` example) matches kMetricsSchemaVersion;
  * every engine_* counter appears in docs/CONCURRENCY.md's table under
    '## Engine counters (metrics schema v3)' and vice versa;
  * every public symbol of the batch engine and its thread pool (scraped
    from src/core/engine.hpp and src/support/thread_pool.hpp — namespace
    -scope types/functions and public members, *_detail namespaces and
    private sections excluded) is named (backticked) somewhere in
    docs/CONCURRENCY.md, so the thread-safety contract cannot silently
    miss an API addition;
  * every key the `engine_latency` record object emits (scraped from
    append_engine_latency_json in src/support/metrics.cpp) appears in
    docs/SERVING.md's table under '## Latency record fields (metrics
    schema v3)' and vice versa, and every engine_* counter plus the
    `tilq_engine_health` gauge is named (backticked) somewhere in
    docs/SERVING.md — the serving guide is machine-checked, not
    best-effort prose;
  * with --telemetry-doc (opt-in): every `tilq_`-prefixed metric name
    the Prometheus exporter emits (string literals scraped from
    src/support/telemetry.cpp) appears in docs/TELEMETRY.md's table
    under '## Exporter metrics' and vice versa; every flight-record
    event name (the to_string(FlightEventKind) table) appears in the
    table under '## Flight-record events' and vice versa; and every
    public symbol of src/support/telemetry.hpp is named (backticked)
    somewhere in docs/TELEMETRY.md;
  * with --tuning-doc (opt-in): every autotune_* counter appears in
    docs/TUNING.md's table under '## Autotune counters' and vice versa,
    and every public symbol of src/core/autotune.hpp (--autotune-header)
    is named (backticked) somewhere in docs/TUNING.md — the operator
    tuning guide is machine-checked, not best-effort prose.

Exits non-zero with a readable diff when any pair drifts apart.
Registered as the `doc_metrics_lint` CTest entry (skipped when python3
is absent).
"""

import argparse
import re
import sys


def struct_fields(path: str, struct: str) -> set[str]:
    """uint64 field names of `struct` declared before its first method."""
    text = open(path, encoding="utf-8").read()
    match = re.search(rf"struct {struct} \{{(.*?)\n\}};", text, re.DOTALL)
    if not match:
        sys.exit(f"{path}: could not find 'struct {struct}'")
    body = match.group(1)
    # Stop at the first member function; fields are declared before them.
    body = body.split(f"{struct}& operator+=")[0]
    fields = re.findall(r"std::uint64_t (\w+) = 0;", body)
    if not fields:
        sys.exit(f"{path}: no counter fields matched in {struct}")
    return set(fields)


def imbalance_fields(path: str) -> set[str]:
    """Keys the `imbalance` JSON object emits (append_imbalance_json)."""
    text = open(path, encoding="utf-8").read()
    match = re.search(
        r"void append_imbalance_json\(.*?\n\}", text, re.DOTALL)
    if not match:
        sys.exit(f"{path}: could not find append_imbalance_json")
    body = match.group(0)
    names = set(re.findall(r'field\("(\w+)"', body))
    names |= set(re.findall(r'\\"(\w+)\\":', body))  # hand-emitted keys
    if not names:
        sys.exit(f"{path}: no emitted fields matched in append_imbalance_json")
    return names


def engine_latency_fields(path: str) -> set[str]:
    """Keys the `engine_latency` record emits (append_engine_latency_json)."""
    text = open(path, encoding="utf-8").read()
    match = re.search(
        r"void append_engine_latency_json\(.*?\n\}", text, re.DOTALL)
    if not match:
        sys.exit(f"{path}: could not find append_engine_latency_json")
    body = match.group(0)
    names = set(re.findall(r'field\("(\w+)"', body))
    names |= set(re.findall(r'\\"(\w+)\\":', body))  # hand-emitted keys
    if not names:
        sys.exit(
            f"{path}: no emitted fields matched in append_engine_latency_json")
    return names


def doc_table(path: str, section: str) -> set[str]:
    """Backticked names from the table rows under `section`."""
    names = set()
    in_section = False
    for line in open(path, encoding="utf-8"):
        if line.startswith("## "):
            in_section = line.strip() == section
            continue
        if not in_section:
            continue
        match = re.match(r"\|\s*`([\w-]+)`\s*\|", line)
        if match:
            names.add(match.group(1))
    if not names:
        sys.exit(f"{path}: no table rows found under '{section}'")
    return names


def fault_sites(path: str) -> set[str]:
    """Site names from the to_string(FaultSite) table in fault.cpp."""
    text = open(path, encoding="utf-8").read()
    match = re.search(
        r"const char\* to_string\(FaultSite site\).*?\n\}", text, re.DOTALL)
    if not match:
        sys.exit(f"{path}: could not find to_string(FaultSite)")
    names = set(re.findall(r'return "([a-z-]+)";', match.group(0)))
    names.discard("?")  # the unreachable default
    if not names:
        sys.exit(f"{path}: no fault site names matched")
    return names


def exporter_metric_names(path: str) -> set[str]:
    """Every `tilq_`-prefixed metric name the exporter emits. The
    implementation keeps metric names as its only tilq_-prefixed string
    literals (diagnostics use a 'tilq telemetry:' prefix), so a literal
    scrape is exact."""
    text = open(path, encoding="utf-8").read()
    names = set(re.findall(r'"(tilq_[a-z0-9_]+)"', text))
    if not names:
        sys.exit(f"{path}: no exporter metric names matched")
    return names


def flight_event_names(path: str) -> set[str]:
    """Event names from the to_string(FlightEventKind) table."""
    text = open(path, encoding="utf-8").read()
    match = re.search(
        r"to_string\(FlightEventKind kind\).*?\n\}", text, re.DOTALL)
    if not match:
        sys.exit(f"{path}: could not find to_string(FlightEventKind)")
    names = set(re.findall(r'return "([a-z-]+)";', match.group(0)))
    names.discard("unknown")  # the unreachable default
    if not names:
        sys.exit(f"{path}: no flight event names matched")
    return names


def defect_kinds(path: str) -> set[str]:
    """Defect-kind strings from the to_string(DefectKind) table."""
    text = open(path, encoding="utf-8").read()
    match = re.search(
        r"to_string\(DefectKind kind\).*?\n\}", text, re.DOTALL)
    if not match:
        sys.exit(f"{path}: could not find to_string(DefectKind)")
    names = set(re.findall(r'return "([a-z-]+)";', match.group(0)))
    names.discard("?")
    if not names:
        sys.exit(f"{path}: no defect kind names matched")
    return names


def check_robustness_doc(doc_path: str, fault_cpp: str,
                         validate_hpp: str) -> bool:
    """Every fault site, defect kind, degradation counter, and
    resilience name (retry/brownout counters, the health gauge) the code
    defines must be named (backticked) in docs/ROBUSTNESS.md."""
    doc = open(doc_path, encoding="utf-8").read()
    documented = set(re.findall(r"`([\w-]+)`", doc))
    required = fault_sites(fault_cpp) | defect_kinds(validate_hpp)
    required |= {"accum_rehashes", "accum_degrades"}
    required |= {"engine_retries", "engine_brownouts", "tilq_engine_health"}
    missing = sorted(required - documented)
    if missing:
        print(f"names missing from {doc_path}:")
        for name in missing:
            print(f"  {name}")
    return bool(missing)


_SKIP_NAMES = {"operator", "static_assert", "require", "return", "if",
               "switch", "for", "while", "throw", "sizeof", "decltype"}


def public_symbols(path: str) -> set[str]:
    """Public API names declared in a header: namespace-scope classes,
    structs, free functions, and the public members of those classes
    (methods, nested types, `using X =` aliases). Private/protected
    sections and *_detail namespaces are excluded. Line-based scan with a
    brace-depth scope stack — not a C++ parser, but exact for the
    project's style (one declaration per line, opening brace on the
    declaration line)."""
    names: set[str] = set()
    depth = 0
    # Scope stack entries: (kind, body_depth, access, name).
    stack: list[tuple[str, int, str, str]] = []

    def scrapeable() -> bool:
        for kind, _, access, name in stack:
            if kind == "namespace" and name.endswith("detail"):
                return False
            if kind in ("class", "struct") and access != "public":
                return False
        return True

    for raw in open(path, encoding="utf-8"):
        line = raw.split("//")[0].rstrip()
        stripped = line.strip()
        top = stack[-1] if stack else None
        at_body = top is not None and depth == top[1]
        ns = re.match(r"namespace (\w+) \{", stripped)
        record = re.match(r"(?:template <.*> )?(class|struct) (\w+)[^;=]*\{",
                          stripped)
        if top and top[0] in ("class", "struct") and at_body:
            if re.match(r"(public|private|protected):", stripped):
                stack[-1] = (top[0], top[1], stripped.split(":")[0], top[3])
            elif scrapeable() and not record:
                alias = re.match(r"using (\w+) =", stripped)
                method = re.search(r"[~ ](\w+)\(", " " + stripped)
                if alias:
                    names.add(alias.group(1))
                elif (method and not stripped.startswith(":")
                      and method.group(1) not in _SKIP_NAMES
                      and not method.group(1).endswith("_")):
                    names.add(method.group(1))
        if ns:
            stack.append(("namespace", depth + 1, "public", ns.group(1)))
        elif record and (top is None or at_body):
            if scrapeable():
                names.add(record.group(2))
            access = "public" if record.group(1) == "struct" else "private"
            stack.append((record.group(1), depth + 1, access,
                          record.group(2)))
        elif (top is not None and top[0] == "namespace" and at_body
              and scrapeable()):
            func = re.match(
                r"(?:\[\[nodiscard\]\] )?[\w:<>]+ (\w+)\(", stripped)
            if func and func.group(1) not in _SKIP_NAMES:
                names.add(func.group(1))
        depth += line.count("{") - line.count("}")
        while stack and depth < stack[-1][1]:
            stack.pop()
    if not names:
        sys.exit(f"{path}: no public symbols matched")
    return names


def doc_mentions(path: str) -> set[str]:
    """Every backticked word anywhere in the doc (prose or tables)."""
    text = open(path, encoding="utf-8").read()
    # Fenced code blocks would flip the inline-span parity; drop them
    # (identifiers must be named in prose, not just shown in examples).
    text = re.sub(r"```.*?```", " ", text, flags=re.DOTALL)
    mentions = set()
    for span in re.findall(r"`([^`]+)`", text):
        mentions |= set(re.findall(r"\w+", span))
    return mentions


def header_schema_version(path: str) -> int:
    text = open(path, encoding="utf-8").read()
    match = re.search(r"kMetricsSchemaVersion = (\d+);", text)
    if not match:
        sys.exit(f"{path}: could not find kMetricsSchemaVersion")
    return int(match.group(1))


def doc_schema_versions(path: str) -> set[int]:
    """Every version number the doc claims, prose and JSON example alike."""
    text = open(path, encoding="utf-8").read()
    claims = re.findall(r"schema version (\d+)", text)
    claims += re.findall(r'"tilq_metrics":(\d+)', text)
    if not claims:
        sys.exit(f"{path}: no schema version claims found")
    return {int(v) for v in claims}


def diff(kind: str, code: set[str], doc: set[str], doc_path: str,
         code_path: str) -> bool:
    undocumented = sorted(code - doc)
    phantom = sorted(doc - code)
    if undocumented:
        print(f"{kind} missing from {doc_path}:")
        for name in undocumented:
            print(f"  {name}")
    if phantom:
        print(f"{kind} documented in {doc_path} but absent from {code_path}:")
        for name in phantom:
            print(f"  {name}")
    return bool(undocumented or phantom)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--header", default="src/support/metrics.hpp")
    parser.add_argument("--perf-header", default="src/support/perf.hpp")
    parser.add_argument("--impl", default="src/support/metrics.cpp")
    parser.add_argument("--doc", default="docs/METRICS.md")
    parser.add_argument("--fault-impl", default="src/support/fault.cpp")
    parser.add_argument("--validate-header",
                        default="src/sparse/validate.hpp")
    parser.add_argument("--robustness-doc", default="docs/ROBUSTNESS.md")
    parser.add_argument("--engine-header", default="src/core/engine.hpp")
    parser.add_argument("--thread-pool-header",
                        default="src/support/thread_pool.hpp")
    parser.add_argument("--concurrency-doc", default="docs/CONCURRENCY.md")
    parser.add_argument("--serving-doc", default="docs/SERVING.md")
    parser.add_argument("--telemetry-impl",
                        default="src/support/telemetry.cpp")
    parser.add_argument("--telemetry-header",
                        default="src/support/telemetry.hpp")
    parser.add_argument("--telemetry-doc", default=None,
                        help="docs/TELEMETRY.md; enables the exporter/"
                             "flight-record/API checks when given")
    parser.add_argument("--autotune-header", default="src/core/autotune.hpp")
    parser.add_argument("--tuning-doc", default=None,
                        help="docs/TUNING.md; enables the autotune counter "
                             "table and API checks when given")
    args = parser.parse_args()

    bad = False
    counters = struct_fields(args.header, "MetricCounters")
    bad |= diff("counters", counters, doc_table(args.doc, "## Counters"),
                args.doc, args.header)

    hw = struct_fields(args.perf_header, "HwCounters")
    bad |= diff("hw counters", hw,
                doc_table(args.doc, "## Hardware counters"),
                args.doc, args.perf_header)

    imbalance = imbalance_fields(args.impl)
    bad |= diff("imbalance fields", imbalance,
                doc_table(args.doc, "## Load imbalance"),
                args.doc, args.impl)

    version = header_schema_version(args.header)
    claimed = doc_schema_versions(args.doc)
    if claimed != {version}:
        print(f"schema version mismatch: {args.header} declares {version}, "
              f"{args.doc} claims {sorted(claimed)}")
        bad = True

    bad |= check_robustness_doc(args.robustness_doc, args.fault_impl,
                                args.validate_header)

    engine_counters = {c for c in counters if c.startswith("engine_")}
    bad |= diff("engine counters", engine_counters,
                doc_table(args.concurrency_doc,
                          "## Engine counters (metrics schema v3)"),
                args.concurrency_doc, args.header)

    api = (public_symbols(args.engine_header)
           | public_symbols(args.thread_pool_header))
    undocumented = sorted(api - doc_mentions(args.concurrency_doc))
    if undocumented:
        print(f"public engine/thread-pool symbols missing from "
              f"{args.concurrency_doc}:")
        for name in undocumented:
            print(f"  {name}")
        bad = True

    latency = engine_latency_fields(args.impl)
    bad |= diff("engine_latency fields", latency,
                doc_table(args.serving_doc,
                          "## Latency record fields (metrics schema v3)"),
                args.serving_doc, args.impl)

    # The health gauge rides along with the engine counters: the
    # operator runbook must name it, or a 503 from /healthz has no
    # documented metric to pivot to.
    serving_required = engine_counters | {"tilq_engine_health"}
    serving_gaps = sorted(serving_required - doc_mentions(args.serving_doc))
    if serving_gaps:
        print(f"engine counters missing from {args.serving_doc}:")
        for name in serving_gaps:
            print(f"  {name}")
        bad = True

    exporter = set()
    events = set()
    telemetry_api = set()
    if args.telemetry_doc:
        exporter = exporter_metric_names(args.telemetry_impl)
        bad |= diff("exporter metrics", exporter,
                    doc_table(args.telemetry_doc, "## Exporter metrics"),
                    args.telemetry_doc, args.telemetry_impl)

        events = flight_event_names(args.telemetry_impl)
        bad |= diff("flight events", events,
                    doc_table(args.telemetry_doc, "## Flight-record events"),
                    args.telemetry_doc, args.telemetry_impl)

        telemetry_api = public_symbols(args.telemetry_header)
        telemetry_gaps = sorted(telemetry_api
                                - doc_mentions(args.telemetry_doc))
        if telemetry_gaps:
            print(f"public telemetry symbols missing from "
                  f"{args.telemetry_doc}:")
            for name in telemetry_gaps:
                print(f"  {name}")
            bad = True

    autotune_counters = set()
    autotune_api = set()
    if args.tuning_doc:
        autotune_counters = {c for c in counters
                             if c.startswith("autotune_")}
        bad |= diff("autotune counters", autotune_counters,
                    doc_table(args.tuning_doc, "## Autotune counters"),
                    args.tuning_doc, args.header)

        autotune_api = public_symbols(args.autotune_header)
        tuning_gaps = sorted(autotune_api - doc_mentions(args.tuning_doc))
        if tuning_gaps:
            print(f"public autotune symbols missing from "
                  f"{args.tuning_doc}:")
            for name in tuning_gaps:
                print(f"  {name}")
            bad = True

    if bad:
        return 1
    summary = (f"ok: {len(counters)} counters, {len(hw)} hw fields, "
               f"{len(imbalance)} imbalance fields, schema v{version}, "
               f"{len(fault_sites(args.fault_impl))} fault sites and "
               f"{len(defect_kinds(args.validate_header))} defect kinds, "
               f"{len(api)} engine/pool symbols and {len(latency)} "
               "engine_latency fields documented")
    if args.telemetry_doc:
        summary += (f"; {len(exporter)} exporter metrics, {len(events)} "
                    f"flight events and {len(telemetry_api)} telemetry "
                    "symbols documented")
    if args.tuning_doc:
        summary += (f"; {len(autotune_counters)} autotune counters and "
                    f"{len(autotune_api)} autotune symbols documented")
    print(summary + "; code and docs consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
