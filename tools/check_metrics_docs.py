#!/usr/bin/env python3
"""Doc-lint: keep docs/METRICS.md and src/support/metrics.hpp in sync.

Checks, in both directions:
  * every counter field of MetricCounters appears (backticked) in the
    counter table of docs/METRICS.md;
  * every counter the doc's table names exists as a MetricCounters field.

Exits non-zero with a readable diff when the two drift apart. Registered
as the `doc_metrics_lint` CTest entry (skipped when python3 is absent).
"""

import argparse
import re
import sys


def counters_in_header(path: str) -> set[str]:
    """Field names of the MetricCounters struct."""
    text = open(path, encoding="utf-8").read()
    match = re.search(r"struct MetricCounters \{(.*?)\n\};", text, re.DOTALL)
    if not match:
        sys.exit(f"{path}: could not find 'struct MetricCounters'")
    body = match.group(1)
    # Stop at the first member function; fields are declared before them.
    body = body.split("MetricCounters& operator+=")[0]
    fields = re.findall(r"std::uint64_t (\w+) = 0;", body)
    if not fields:
        sys.exit(f"{path}: no counter fields matched in MetricCounters")
    return set(fields)


def counters_in_doc(path: str) -> set[str]:
    """Counter names from the table rows of the '## Counters' section."""
    names = set()
    in_section = False
    for line in open(path, encoding="utf-8"):
        if line.startswith("## "):
            in_section = line.strip() == "## Counters"
            continue
        if not in_section:
            continue
        match = re.match(r"\|\s*`(\w+)`\s*\|", line)
        if match:
            names.add(match.group(1))
    if not names:
        sys.exit(f"{path}: no counter table rows found under '## Counters'")
    return names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--header", default="src/support/metrics.hpp")
    parser.add_argument("--doc", default="docs/METRICS.md")
    args = parser.parse_args()

    header = counters_in_header(args.header)
    doc = counters_in_doc(args.doc)

    undocumented = sorted(header - doc)
    phantom = sorted(doc - header)
    if undocumented:
        print(f"counters missing from {args.doc}:")
        for name in undocumented:
            print(f"  {name}")
    if phantom:
        print(f"counters documented in {args.doc} but absent from {args.header}:")
        for name in phantom:
            print(f"  {name}")
    if undocumented or phantom:
        return 1
    print(f"ok: {len(header)} counters consistent between header and doc")
    return 0


if __name__ == "__main__":
    sys.exit(main())
