#!/usr/bin/env python3
"""Record a performance snapshot: run the bench grid with TILQ_METRICS on.

Runs `tilq_cli` over a small (matrix x config) grid with the metrics sink
pointed at BENCH_<tag>.json, producing one JSON-lines metrics record per
cell (docs/METRICS.md). Two snapshots taken on the same machine compare
with `tools/bench_diff.py`; the committed BENCH_seed.json is the
repository's reference shape (counters are machine-independent; its
timings only mean something on the machine that wrote it).

Wired up as the `tilq_bench_snapshot` CMake target:

    cmake --build build --target tilq_bench_snapshot       # BENCH_dev.json
    TILQ_SNAPSHOT_TAG=after cmake --build build --target tilq_bench_snapshot
    tools/bench_diff.py BENCH_dev.json BENCH_after.json

The grid is deliberately tiny (seconds, not minutes): the harness exists
to catch gross regressions cheaply on every change; the full paper grids
live in the fig* bench binaries.
"""

import argparse
import os
import subprocess
import sys

# (matrix, extra flags) x config: two structurally different graphs (road:
# uniform low degree; circuit: skewed rows) under the two interesting
# strategy/accumulator corners, plus the blocked execution space on both
# (small block width so even the tiny snapshot graphs produce several
# column blocks — the point is the counter shape, not the timing).
GRID_MATRICES = ["GAP-road", "circuit5M"]
GRID_CONFIGS = [
    ["--strategy", "mask-first", "--acc", "hash"],
    ["--strategy", "hybrid", "--kappa", "1", "--acc", "dense"],
    ["--strategy", "hybrid", "--kappa", "1", "--acc", "hash",
     "--mode", "blocked", "--block-cols", "256"],
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True,
                        help="path to the built tilq_cli binary")
    parser.add_argument("--iterated", default=None,
                        help="path to the built iterated_workload bench; when "
                             "given, its plan-reuse records (source "
                             "'iterated_workload') are appended to the "
                             "snapshot, so bench_diff also guards the "
                             "planned-execute path")
    parser.add_argument("--engine", default=None,
                        help="path to the built engine_throughput bench; when "
                             "given, its serving records (source "
                             "'engine_throughput', one per job level) are "
                             "appended, so bench_diff also guards the batch "
                             "engine")
    parser.add_argument("--tag",
                        default=os.environ.get("TILQ_SNAPSHOT_TAG", "dev"),
                        help="snapshot name: writes BENCH_<tag>.json "
                             "(default from TILQ_SNAPSHOT_TAG, else 'dev')")
    parser.add_argument("--out-dir", default=".",
                        help="directory for the snapshot file")
    parser.add_argument("--scale", default="0.05",
                        help="collection scale for the grid (default 0.05)")
    parser.add_argument("--repeats", default="3",
                        help="timing repetitions per cell (default 3)")
    parser.add_argument("--threads", default="2",
                        help="threads per run (default 2)")
    args = parser.parse_args()

    out_path = os.path.abspath(
        os.path.join(args.out_dir, f"BENCH_{args.tag}.json"))
    if os.path.exists(out_path):
        os.remove(out_path)  # the sink appends; a snapshot starts fresh

    env = dict(os.environ)
    env["TILQ_METRICS"] = out_path
    env.pop("TILQ_TRACE", None)  # don't let a stray trace slow the grid

    cells = 0
    for matrix in GRID_MATRICES:
        for config in GRID_CONFIGS:
            command = [args.cli, "--graph", matrix, "--scale", args.scale,
                       "--repeats", args.repeats, "--threads", args.threads,
                       *config]
            print(f"snapshot: {' '.join(command[1:])}", flush=True)
            result = subprocess.run(command, env=env, stdout=subprocess.DEVNULL)
            if result.returncode != 0:
                sys.exit(f"snapshot cell failed (exit {result.returncode}): "
                         f"{' '.join(command)}")
            cells += 1

    if args.iterated:
        # The iterated bench reads the standard bench knobs; align them with
        # the grid so the snapshot is one coherent workload size.
        env["TILQ_BENCH_SCALE"] = args.scale
        env["TILQ_BENCH_THREADS"] = args.threads
        # Record-only: the speedup gate lives in CI's plan-reuse job, not in
        # the snapshot (a snapshot should never fail on timing noise).
        command = [args.iterated]
        print("snapshot: iterated_workload", flush=True)
        result = subprocess.run(command, env=env, stdout=subprocess.DEVNULL)
        if result.returncode != 0:
            sys.exit(f"iterated snapshot failed (exit {result.returncode}): "
                     f"{' '.join(command)}")
        cells += 1

    if args.engine:
        env["TILQ_BENCH_SCALE"] = args.scale
        env["TILQ_BENCH_THREADS"] = args.threads
        # Record-only, small stream: the speedup gate lives in CI's
        # engine-smoke job.
        command = [args.engine, "--jobs", "1,8", "--queries", "8"]
        print("snapshot: engine_throughput", flush=True)
        result = subprocess.run(command, env=env, stdout=subprocess.DEVNULL)
        if result.returncode != 0:
            sys.exit(f"engine snapshot failed (exit {result.returncode}): "
                     f"{' '.join(command)}")
        cells += 1
        # The engine-mode records must carry the serving percentile block
        # (docs/SERVING.md): a snapshot whose engine_latency object went
        # missing would silently stop guarding the latency path.
        with open(out_path, encoding="utf-8") as handle:
            if '"engine_latency_jobs":' not in handle.read():
                sys.exit(f"engine snapshot wrote no engine_latency block to "
                         f"{out_path} — serving percentiles missing from the "
                         "jobs=N records")

    if not os.path.exists(out_path):
        sys.exit(f"no records written to {out_path} — was tilq_cli built "
                 "with -DTILQ_METRICS=ON?")
    with open(out_path, encoding="utf-8") as handle:
        records = sum(1 for line in handle if line.strip())
    print(f"wrote {records} record(s) from {cells} cell(s) to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
