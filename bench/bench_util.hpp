// Shared benchmark infrastructure. Every figure/table bench:
//   * runs on the synthetic collection (scaled per-bench, overridable with
//     TILQ_BENCH_SCALE),
//   * measures with the paper's protocol (warm-up, then budget/iteration
//     capped repetition; the output is freed after each run because each
//     iteration builds and drops its result),
//   * prints both a human-readable table and machine-readable CSV lines
//     (prefix "CSV,") so plots can be regenerated from captured stdout.
//
// Environment knobs:
//   TILQ_BENCH_SCALE    multiplies every graph's node count (default 1.0)
//   TILQ_BENCH_THREADS  thread count (default: OpenMP default)
//   TILQ_BENCH_BUDGET   per-measurement seconds (default 0.25)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "tilq/tilq.hpp"

namespace tilq::bench {

/// Reads a double environment knob with a default.
inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// Global scale multiplier applied on top of a bench's own default scale.
inline double bench_scale(double bench_default = 1.0) {
  return bench_default * env_double("TILQ_BENCH_SCALE", 1.0);
}

inline int bench_threads() { return env_int("TILQ_BENCH_THREADS", 0); }

/// Measurement options for one configuration sample.
inline TimingOptions bench_timing() {
  TimingOptions options;
  options.budget_seconds = env_double("TILQ_BENCH_BUDGET", 0.25);
  options.max_iterations = 20;
  options.min_iterations = 2;
  options.warmup = true;
  return options;
}

/// Lazily generated, cached collection instances (several benches touch the
/// same graph repeatedly).
class GraphCache {
 public:
  explicit GraphCache(double scale) : scale_(scale) {}

  const GraphMatrix& get(const std::string& name) {
    auto it = cache_.find(name);
    if (it == cache_.end()) {
      it = cache_.emplace(name, make_collection_graph(name, scale_)).first;
    }
    return it->second;
  }

  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  double scale_;
  std::map<std::string, GraphMatrix> cache_;
};

/// Source label stamped into the `source` field of emitted metrics records
/// (docs/METRICS.md); print_header() sets it to the bench name.
inline std::string& metrics_source() {
  static std::string source = "bench";
  return source;
}

/// measure() plus observability: when metrics are runtime-enabled
/// (TILQ_METRICS), the counter delta accumulated across every run of the
/// measurement — warmup included — is emitted as one JSON-lines record, so
/// `counters / runs` gives exact per-execution event counts.
inline TimingResult measure_with_metrics(const std::function<void()>& body,
                                         const TimingOptions& timing,
                                         const std::string& matrix,
                                         const std::string& config_label) {
  if (!metrics_enabled()) {
    return measure(body, timing);
  }
  const MetricsSnapshot before = metrics_snapshot();
  const TimingResult result = measure(body, timing);
  MetricsRecord record;
  record.source = metrics_source();
  record.matrix = matrix;
  record.config = config_label;
  record.runs = result.iterations + (timing.warmup ? 1 : 0);
  record.median_ms = result.median_ms;
  emit_metrics_record(record, metrics_delta(before, metrics_snapshot()));
  return result;
}

/// Emits one metrics record for a single kernel run timed outside
/// measure(): snapshot before the run, then call this with the elapsed
/// time. Serving benches pass `latency` to attach the engine's
/// percentile block (the nullable `engine_latency` record object); null
/// is emitted otherwise. No-op when metrics are runtime-disabled.
inline void emit_single_run_metrics(const MetricsSnapshot& before,
                                    const std::string& matrix,
                                    const std::string& config_label,
                                    double elapsed_ms,
                                    const EngineLatencyRecord* latency =
                                        nullptr) {
  if (!metrics_enabled()) {
    return;
  }
  MetricsRecord record;
  record.source = metrics_source();
  record.matrix = matrix;
  record.config = config_label;
  record.runs = 1;
  record.median_ms = elapsed_ms;
  if (latency != nullptr) {
    record.engine_latency = *latency;
  }
  emit_metrics_record(record, metrics_delta(before, metrics_snapshot()));
}

/// Times the paper's kernel C = A ⊙ (A × A) under `config`; returns the
/// median milliseconds. `matrix` names the input in the emitted metrics
/// record (empty leaves the record's matrix field blank).
inline double time_kernel(const GraphMatrix& a, const Config& config,
                          const TimingOptions& timing = bench_timing(),
                          const std::string& matrix = "") {
  const TimingResult result = measure_with_metrics(
      [&] { (void)masked_spgemm<PlusTimes<double>>(a, a, a, config); }, timing,
      matrix, config.describe());
  return result.median_ms;
}

/// Prints the standard bench header (environment + scale) so outputs are
/// self-describing.
inline void print_header(const char* bench_name, double scale) {
  metrics_source() = bench_name;
  std::printf("== %s ==\n", bench_name);
  std::printf("environment: %s\n", environment_summary().c_str());
  std::printf("collection scale: %.3g (paper sizes / ~1000 at scale 1)\n\n",
              scale);
}

/// One (configuration, matrix) measurement for the relative-performance
/// summaries (Figs 10 and 13 express results as "% of matrices within 10%%
/// of the best configuration").
struct Sample {
  std::string config_label;
  std::string matrix;
  double ms = 0.0;
};

/// Fig 10/13-style aggregation: for each config label, the percentage of
/// matrices whose time is within `slack` of that matrix's best time.
inline std::map<std::string, double> percent_within(
    const std::vector<Sample>& samples, double slack = 0.10) {
  std::map<std::string, double> best_per_matrix;
  for (const Sample& s : samples) {
    auto [it, inserted] = best_per_matrix.emplace(s.matrix, s.ms);
    if (!inserted && s.ms < it->second) {
      it->second = s.ms;
    }
  }
  std::map<std::string, int> hits;
  std::map<std::string, int> totals;
  for (const Sample& s : samples) {
    ++totals[s.config_label];
    if (s.ms <= best_per_matrix[s.matrix] * (1.0 + slack)) {
      ++hits[s.config_label];
    }
  }
  std::map<std::string, double> result;
  for (const auto& [label, total] : totals) {
    result[label] = 100.0 * hits[label] / total;
  }
  return result;
}

}  // namespace tilq::bench
