// Engine serving throughput: queries/sec and latency percentiles of the
// batch engine versus serial back-to-back one-shot calls, on a mixed
// stream alternating between a road network and a circuit graph (the two
// collection extremes: uniform low degree vs heavy skew).
//
//   serial    one masked_spgemm call per query, each replanning and
//             reallocating from scratch — the no-engine baseline
//   jobs=N    the same stream through tilq::Engine with up to N queries
//             in flight (sliding submission window): cached plans, pooled
//             accumulators, recycled driver buffers, interleaved tiles
//
// Every engine result is checked bit-identical against the one-shot
// oracle for its matrix. With --min-speedup X the process exits non-zero
// unless the highest job level reaches X times the serial queries/sec
// with all outputs identical — CI's engine-smoke contract.
//
// The speedup is regime-dependent, exactly like tiling itself: on a
// planning-bound stream (road: low, uniform degree — analyze/alloc is
// ~half of every serial call) the engine wins big; on a compute-bound
// stream (circuit: the kernel is ~80% of the call and is bit-identical
// in both modes) amortization can only shave the planning sliver. Use
// --stream to measure one regime in isolation.
//
// Latency mode (--latency): instead of sweeping job levels, replay an
// injected heavy-tail stream — mostly the first --stream graph, with the
// last one spliced in every --tail-every queries — through the same
// closed-loop window twice: once with priority scheduling off (FIFO, the
// baseline) and once with the cost-model lanes on. Both passes see the
// identical stream and window (fixed offered load); the gate is the p99
// ratio. This is the serving claim of docs/SERVING.md made executable:
// under FIFO one expensive query's tiles queue ahead of every cheap query
// admitted behind it, so the cheap p99 collapses to the expensive
// runtime; with lanes the cheap tiles jump ahead and p99 stays near the
// cheap service time. Each pass emits one metrics record carrying the
// engine's percentile block (the `engine_latency` record object).
//
// Flags: --jobs a,b,...      job levels to sweep (default 1,2,4,8)
//        --queries N         queries per level (default 16; 128 in
//                            latency mode unless set explicitly)
//        --stream a,b,...    graphs cycled through (default mixed
//                            GAP-road,circuit5M); latency mode reads
//                            first=cheap, last=expensive
//        --repeats R         best-of-R per mode, serial included — noise
//                            mitigation on shared machines (default 1)
//        --min-speedup X     gate on the highest level (default: report)
//        --latency           run the heavy-tail percentile comparison
//        --tail-every K      expensive query period in latency mode
//                            (default 64)
//        --min-p99-improvement X   latency-mode gate: FIFO p99 must be at
//                            least X times the priority p99, bit-identical
//
// Telemetry-overhead mode (--telemetry-overhead): run one job level (the
// highest of --jobs) over the same stream twice — telemetry sampler off,
// then on at a 100 ms interval with no exporter port — best-of-repeats
// each, and gate the relative queries/sec regression at --max-overhead
// (default 0.02, docs/TELEMETRY.md's <2% claim; CI uses a looser bound
// on shared runners).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using tilq::Csr;
using SR = tilq::PlusTimes<double>;

bool bit_identical(const Csr<double, std::int64_t>& x,
                   const Csr<double, std::int64_t>& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() && x.nnz() == y.nnz() &&
         std::memcmp(x.row_ptr().data(), y.row_ptr().data(),
                     x.row_ptr().size_bytes()) == 0 &&
         std::memcmp(x.col_idx().data(), y.col_idx().data(),
                     x.col_idx().size_bytes()) == 0 &&
         std::memcmp(x.values().data(), y.values().data(),
                     x.values().size_bytes()) == 0;
}

double quantile(const std::vector<double>& sorted, double q) {
  const auto index =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> job_levels = {1, 2, 4, 8};
  int queries = 16;
  bool queries_set = false;
  int repeats = 1;
  double min_speedup = 0.0;
  bool latency_mode = false;
  bool telemetry_overhead_mode = false;
  double max_overhead = 0.02;
  int tail_every = 64;
  double min_p99_improvement = 0.0;
  std::vector<std::string> names = {"GAP-road", "circuit5M"};
  const auto split_list = [](const std::string& list) {
    std::vector<std::string> out;
    for (std::size_t pos = 0; pos < list.size();) {
      const std::size_t comma = std::min(list.find(',', pos), list.size());
      out.push_back(list.substr(pos, comma - pos));
      pos = comma + 1;
    }
    return out;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      job_levels.clear();
      for (const std::string& item : split_list(argv[++i])) {
        job_levels.push_back(std::max(1, std::atoi(item.c_str())));
      }
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::max(1, std::atoi(argv[++i]));
      queries_set = true;
    } else if (std::strcmp(argv[i], "--latency") == 0) {
      latency_mode = true;
    } else if (std::strcmp(argv[i], "--telemetry-overhead") == 0) {
      telemetry_overhead_mode = true;
    } else if (std::strcmp(argv[i], "--max-overhead") == 0 && i + 1 < argc) {
      max_overhead = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--tail-every") == 0 && i + 1 < argc) {
      tail_every = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--min-p99-improvement") == 0 &&
               i + 1 < argc) {
      min_p99_improvement = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--stream") == 0 && i + 1 < argc) {
      names = split_list(argv[++i]);
      if (names.empty()) {
        std::fprintf(stderr, "--stream needs at least one graph name\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs a,b,...] [--queries n] "
                   "[--stream a,b,...] [--repeats r] [--min-speedup x] "
                   "[--latency] [--tail-every k] "
                   "[--min-p99-improvement x] "
                   "[--telemetry-overhead] [--max-overhead x]\n",
                   argv[0]);
      return 2;
    }
  }

  const double scale = tilq::bench::bench_scale(1.0);
  tilq::bench::print_header("engine_throughput", scale);
  tilq::bench::metrics_source() = "engine_throughput";
  tilq::bench::GraphCache cache(scale);

  tilq::Config config;
  config.strategy = tilq::MaskStrategy::kHybrid;  // heaviest analyze phase
  config.threads = tilq::bench::bench_threads();

  if (latency_mode) {
    if (!queries_set) {
      queries = 128;  // enough samples for a meaningful p99
    }
    const tilq::GraphMatrix& cheap = cache.get(names.front());
    // The injected tail is the last stream graph at 4x the collection
    // scale: a genuinely expensive query (tens of times the cheap FLOP
    // total), not just a different structure — the regime where FIFO's
    // p99 collapse actually shows.
    tilq::bench::GraphCache tail_cache(scale * 4.0);
    const tilq::GraphMatrix& expensive = tail_cache.get(names.back());
    const std::string stream_label =
        names.front() + " tail " + names.back();

    // Heavy-tail stream: cheap everywhere, the expensive structure
    // spliced in every tail_every-th position. The expensive samples
    // themselves sit above the p99 rank (2 of 128 at the defaults), so
    // the percentile measures what FIFO does to the *cheap* traffic.
    std::vector<bool> is_tail(static_cast<std::size_t>(queries), false);
    for (int i = tail_every - 1; i < queries; i += tail_every) {
      is_tail[static_cast<std::size_t>(i)] = true;
    }

    // One-shot oracles for bit-identity.
    const Csr<double, std::int64_t> cheap_oracle =
        tilq::masked_spgemm<SR>(cheap, cheap, cheap, config);
    const Csr<double, std::int64_t> expensive_oracle =
        tilq::masked_spgemm<SR>(expensive, expensive, expensive, config);

    // Price both structures through the engine's own cost model and put
    // the classification threshold halfway between them — deterministic,
    // where the adaptive running mean would depend on stream order.
    std::uint64_t cheap_flops = 0;
    std::uint64_t expensive_flops = 0;
    {
      tilq::EngineOptions probe_options;
      probe_options.threads = tilq::bench::bench_threads();
      tilq::Engine<SR> probe(probe_options);
      auto hc = probe.submit(cheap, cheap, cheap, config);
      (void)hc.get();
      cheap_flops = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, hc.stats().flop_estimate));
      auto he = probe.submit(expensive, expensive, expensive, config);
      (void)he.get();
      expensive_flops = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, he.stats().flop_estimate));
    }
    const std::uint64_t threshold = cheap_flops / 2 + expensive_flops / 2;
    std::printf(
        "latency mode: %d queries, expensive every %d (cost model: "
        "cheap=%llu flops, expensive=%llu flops, threshold=%llu)\n\n",
        queries, tail_every,
        static_cast<unsigned long long>(cheap_flops),
        static_cast<unsigned long long>(expensive_flops),
        static_cast<unsigned long long>(threshold));
    std::printf("%-10s %12s %10s %10s %10s %6s\n", "mode", "queries/s",
                "p50 ms", "p95 ms", "p99 ms", "ident");

    struct ModeResult {
      double qps = 0.0;
      double p50 = 0.0;
      double p95 = 0.0;
      double p99 = 0.0;
      bool identical = true;
    };
    const int window = 8;
    const auto run_mode = [&](bool priority) {
      tilq::EngineOptions options;
      options.threads = tilq::bench::bench_threads();
      options.max_in_flight = window;
      options.expensive_flops = threshold;
      options.priority_scheduling = priority;
      tilq::Engine<SR> engine(options);
      // Warm plans and workspaces for both structures.
      (void)engine.submit(cheap, cheap, cheap, config).get();
      (void)engine.submit(expensive, expensive, expensive, config).get();

      const tilq::MetricsSnapshot before = tilq::metrics_snapshot();
      ModeResult result;
      std::vector<double> best_lat;
      double best_elapsed = 0.0;
      for (int rep = 0; rep < repeats; ++rep) {
        std::vector<double> lat;
        lat.reserve(static_cast<std::size_t>(queries));
        std::vector<Csr<double, std::int64_t>> outputs;
        outputs.reserve(static_cast<std::size_t>(queries));
        std::vector<tilq::Engine<SR>::JobHandle> handles;
        tilq::WallTimer wall;
        const auto retire_front = [&] {
          outputs.push_back(handles.front().get());
          lat.push_back(handles.front().stats().total_ms);
          handles.erase(handles.begin());
        };
        for (int i = 0; i < queries; ++i) {
          if (handles.size() >= static_cast<std::size_t>(window)) {
            retire_front();
          }
          const tilq::GraphMatrix& a =
              is_tail[static_cast<std::size_t>(i)] ? expensive : cheap;
          handles.push_back(engine.submit(a, a, a, config));
        }
        while (!handles.empty()) {
          retire_front();
        }
        const double elapsed = wall.seconds();
        for (std::size_t i = 0; i < outputs.size(); ++i) {
          result.identical =
              result.identical &&
              bit_identical(is_tail[i] ? expensive_oracle : cheap_oracle,
                            outputs[i]);
        }
        std::sort(lat.begin(), lat.end());
        // Best-of-R by p99: the gated number, so both modes keep their
        // least-noisy pass.
        if (rep == 0 || quantile(lat, 0.99) < quantile(best_lat, 0.99)) {
          best_lat = std::move(lat);
          best_elapsed = elapsed;
        }
      }
      result.qps = static_cast<double>(queries) / best_elapsed;
      result.p50 = quantile(best_lat, 0.5);
      result.p95 = quantile(best_lat, 0.95);
      result.p99 = quantile(best_lat, 0.99);
      const tilq::EngineLatencyRecord latency =
          tilq::engine_latency_record(engine.stats());
      tilq::bench::emit_single_run_metrics(
          before, stream_label,
          priority ? "latency-priority" : "latency-fifo", best_elapsed * 1e3,
          &latency);
      const char* label = priority ? "priority" : "fifo";
      std::printf("%-10s %12.2f %10.2f %10.2f %10.2f %6s\n", label,
                  result.qps, result.p50, result.p95, result.p99,
                  result.identical ? "yes" : "NO");
      std::printf("CSV,engine-latency,%s,%d,%.4f,%.4f,%.4f,%.4f,%d\n", label,
                  queries, result.qps, result.p50, result.p95, result.p99,
                  result.identical ? 1 : 0);
      return result;
    };

    const ModeResult fifo = run_mode(/*priority=*/false);
    const ModeResult priority = run_mode(/*priority=*/true);
    const double improvement =
        priority.p99 > 0.0 ? fifo.p99 / priority.p99 : 0.0;
    std::printf("\np99 improvement (fifo/priority): %.2fx\n", improvement);
    std::printf("CSV,engine-latency-improvement,%.4f\n", improvement);
    bool ok = fifo.identical && priority.identical;
    if (min_p99_improvement > 0.0) {
      if (improvement < min_p99_improvement) {
        ok = false;
      }
      std::printf(
          "gate: priority p99 >= %.2fx better than FIFO, bit-identical => "
          "%s\n",
          min_p99_improvement, ok ? "PASS" : "FAIL");
    }
    return ok ? 0 : 1;
  }

  std::vector<const tilq::GraphMatrix*> stream;
  stream.reserve(static_cast<std::size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    stream.push_back(
        &cache.get(names[static_cast<std::size_t>(i) % names.size()]));
  }

  // One-shot oracles, also the warm-up for the generators.
  std::vector<Csr<double, std::int64_t>> oracles;
  for (const std::string& name : names) {
    const auto& a = cache.get(name);
    oracles.push_back(tilq::masked_spgemm<SR>(a, a, a, config));
  }

  std::string stream_label = names[0];
  for (std::size_t i = 1; i < names.size(); ++i) {
    stream_label += " + " + names[i];
  }

  if (telemetry_overhead_mode) {
    // One job level (the highest requested), same closed-loop window, run
    // with the sampler off and then on. The sampler thread only snapshots
    // counters and scans the watchdog map; the gate makes "live telemetry
    // is ~free" an executable claim rather than a doc sentence.
    const int jobs = job_levels.back();
    std::printf(
        "telemetry-overhead mode: jobs=%d, %d queries, sampler at 100 ms "
        "(stream: %s)\n\n",
        jobs, queries, stream_label.c_str());
    const auto run_pass = [&](bool telemetry_on) {
      tilq::EngineOptions options;
      options.threads = tilq::bench::bench_threads();
      options.max_in_flight = static_cast<std::size_t>(jobs);
      options.telemetry.enabled = telemetry_on;
      options.telemetry.sample_interval_ms = 100.0;
      options.telemetry.port = -1;  // measure the sampler, not the listener
      tilq::Engine<SR> engine(options);
      for (const std::string& name : names) {
        const auto& a = cache.get(name);
        (void)engine.submit(a, a, a, config).get();
      }
      double best_elapsed = 0.0;
      bool identical = true;
      for (int rep = 0; rep < repeats; ++rep) {
        std::vector<Csr<double, std::int64_t>> outputs;
        outputs.reserve(stream.size());
        std::vector<tilq::Engine<SR>::JobHandle> window;
        tilq::WallTimer wall;
        for (std::size_t i = 0; i < stream.size(); ++i) {
          if (window.size() >= static_cast<std::size_t>(jobs)) {
            outputs.push_back(window.front().get());
            window.erase(window.begin());
          }
          const tilq::GraphMatrix& a = *stream[i];
          window.push_back(engine.submit(a, a, a, config));
        }
        while (!window.empty()) {
          outputs.push_back(window.front().get());
          window.erase(window.begin());
        }
        const double elapsed = wall.seconds();
        for (std::size_t i = 0; i < outputs.size(); ++i) {
          identical = identical &&
                      bit_identical(oracles[i % names.size()], outputs[i]);
        }
        if (rep == 0 || elapsed < best_elapsed) {
          best_elapsed = elapsed;
        }
      }
      const double qps = static_cast<double>(queries) / best_elapsed;
      std::printf("%-14s %12.2f queries/s %s\n",
                  telemetry_on ? "telemetry-on" : "telemetry-off", qps,
                  identical ? "" : " NOT IDENTICAL");
      return identical ? qps : -1.0;
    };
    const double qps_off = run_pass(/*telemetry_on=*/false);
    const double qps_on = run_pass(/*telemetry_on=*/true);
    const bool identical = qps_off > 0.0 && qps_on > 0.0;
    const double overhead =
        identical && qps_off > 0.0 ? (qps_off - qps_on) / qps_off : 1.0;
    std::printf("\ntelemetry overhead: %.2f%% of queries/sec\n",
                100.0 * overhead);
    std::printf("CSV,engine-telemetry-overhead,%d,%d,%.4f,%.4f,%.4f,%d\n",
                jobs, queries, qps_off, qps_on, overhead, identical ? 1 : 0);
    const bool ok = identical && overhead <= max_overhead;
    std::printf("gate: overhead <= %.2f%%, bit-identical => %s\n",
                100.0 * max_overhead, ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  std::printf("config: %s, %d queries per level (stream: %s)\n\n",
              config.describe().c_str(), queries, stream_label.c_str());
  std::printf("%-8s %12s %10s %10s %9s %6s\n", "mode", "queries/s", "p50 ms",
              "p99 ms", "speedup", "ident");

  // Serial baseline: back-to-back one-shot calls, replanning every query.
  // Results are retained until the clock stops, exactly like the engine
  // loop below — both sides pay the same cost for materializing the full
  // result set instead of recycling one result's pages. With --repeats R
  // the fastest of R passes is kept (best-of approximates the unloaded
  // machine; the engine levels below get the identical treatment).
  const tilq::MetricsSnapshot serial_before = tilq::metrics_snapshot();
  std::vector<double> serial_lat;
  double serial_s = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    std::vector<double> lat;
    lat.reserve(stream.size());
    std::vector<Csr<double, std::int64_t>> serial_outputs;
    serial_outputs.reserve(stream.size());
    tilq::WallTimer serial_wall;
    for (const tilq::GraphMatrix* a : stream) {
      tilq::WallTimer per_query;
      serial_outputs.push_back(tilq::masked_spgemm<SR>(*a, *a, *a, config));
      lat.push_back(per_query.milliseconds());
    }
    const double elapsed = serial_wall.seconds();
    if (rep == 0 || elapsed < serial_s) {
      serial_s = elapsed;
      serial_lat = std::move(lat);
    }
  }
  const double serial_qps = static_cast<double>(queries) / serial_s;
  std::sort(serial_lat.begin(), serial_lat.end());
  tilq::bench::emit_single_run_metrics(serial_before, stream_label, "serial",
                                       serial_s * 1e3);
  std::printf("%-8s %12.2f %10.2f %10.2f %8.2fx %6s\n", "serial", serial_qps,
              quantile(serial_lat, 0.5), quantile(serial_lat, 0.99), 1.0,
              "yes");
  std::printf("CSV,engine,serial,%d,%.4f,%.4f,%.4f,1.0,1\n", queries,
              serial_qps, quantile(serial_lat, 0.5),
              quantile(serial_lat, 0.99));

  bool gate_ok = true;
  double top_speedup = 0.0;
  for (const int jobs : job_levels) {
    tilq::EngineOptions options;
    options.threads = tilq::bench::bench_threads();
    options.max_in_flight = static_cast<std::size_t>(jobs);
    tilq::Engine<SR> engine(options);
    // Warm the plan cache and workspaces once per structure — steady-state
    // serving is what the engine exists for.
    for (const std::string& name : names) {
      const auto& a = cache.get(name);
      (void)engine.submit(a, a, a, config).get();
    }

    const tilq::MetricsSnapshot before = tilq::metrics_snapshot();
    std::vector<double> latencies;
    bool identical = true;
    double elapsed_s = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      std::vector<double> lat;
      lat.reserve(stream.size());
      // Retired outputs are kept and verified after the clock stops — the
      // serial loop does not verify inside its timed region either.
      std::vector<Csr<double, std::int64_t>> outputs;
      outputs.reserve(stream.size());
      std::vector<tilq::Engine<SR>::JobHandle> window;
      tilq::WallTimer wall;
      const auto retire_front = [&] {
        outputs.push_back(window.front().get());
        lat.push_back(window.front().stats().total_ms);
        window.erase(window.begin());
      };
      for (std::size_t i = 0; i < stream.size(); ++i) {
        if (window.size() >= static_cast<std::size_t>(jobs)) {
          retire_front();
        }
        const tilq::GraphMatrix& a = *stream[i];
        window.push_back(engine.submit(a, a, a, config));
      }
      while (!window.empty()) {
        retire_front();
      }
      const double elapsed = wall.seconds();
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        identical =
            identical && bit_identical(oracles[i % names.size()], outputs[i]);
      }
      if (rep == 0 || elapsed < elapsed_s) {
        elapsed_s = elapsed;
        latencies = std::move(lat);
      }
    }
    const double qps = static_cast<double>(queries) / elapsed_s;
    const double speedup = serial_qps > 0.0 ? qps / serial_qps : 0.0;
    std::sort(latencies.begin(), latencies.end());
    const std::string label = "jobs=" + std::to_string(jobs);
    const tilq::EngineLatencyRecord latency_record =
        tilq::engine_latency_record(engine.stats());
    tilq::bench::emit_single_run_metrics(before, stream_label, label,
                                         elapsed_s * 1e3, &latency_record);
    std::printf("%-8s %12.2f %10.2f %10.2f %8.2fx %6s\n", label.c_str(), qps,
                quantile(latencies, 0.5), quantile(latencies, 0.99), speedup,
                identical ? "yes" : "NO");
    std::printf("CSV,engine,%d,%d,%.4f,%.4f,%.4f,%.4f,%d\n", jobs, queries,
                qps, quantile(latencies, 0.5), quantile(latencies, 0.99),
                speedup, identical ? 1 : 0);
    if (!identical) {
      gate_ok = false;
    }
    top_speedup = speedup;  // levels ascend; the last is the gated one
  }

  if (min_speedup > 0.0) {
    if (top_speedup < min_speedup) {
      gate_ok = false;
    }
    std::printf(
        "\ngate: >= %.2fx serial queries/sec at jobs=%d, bit-identical => "
        "%s\n",
        min_speedup, job_levels.back(), gate_ok ? "PASS" : "FAIL");
    return gate_ok ? 0 : 1;
  }
  return gate_ok ? 0 : 1;
}
