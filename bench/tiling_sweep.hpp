// Shared tiling/scheduling sweep used by the Fig 10 summary and the Fig 11
// per-graph series: (2 accumulators x 2 tilings x 2 schedules x tile-count
// sweep) on every graph, mask-first kernel (the paper excludes co-iteration
// from the tiling experiments, §IV-C), and circuit5M excluded as in the
// paper ("for the circuit5M matrix we do not report tiling results").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace tilq::bench {

struct TilingPoint {
  std::string matrix;
  AccumulatorKind accumulator;
  Tiling tiling;
  Schedule schedule;
  std::int64_t tiles = 0;
  double ms = 0.0;
};

/// The tile counts swept. The paper uses 64..32768 with 64 threads; scaled
/// to this machine we sweep a decade-spanning set clamped to the matrix
/// row count by the driver.
inline std::vector<std::int64_t> tiling_sweep_tile_counts() {
  return {16, 64, 256, 1024, 4096, 16384};
}

/// Graphs included in the tiling experiments (Table I minus circuit5M).
inline std::vector<std::string> tiling_sweep_graphs() {
  std::vector<std::string> names;
  for (const std::string& name : collection_names()) {
    if (name != "circuit5M") {
      names.push_back(name);
    }
  }
  return names;
}

/// Runs the full sweep, invoking `on_point` after each measurement (for
/// streaming output).
inline std::vector<TilingPoint> run_tiling_sweep(
    GraphCache& cache, const TimingOptions& timing,
    const std::function<void(const TilingPoint&)>& on_point = {}) {
  std::vector<TilingPoint> points;
  const int threads = bench_threads();
  for (const std::string& name : tiling_sweep_graphs()) {
    const GraphMatrix& a = cache.get(name);
    for (const AccumulatorKind acc :
         {AccumulatorKind::kDense, AccumulatorKind::kHash}) {
      for (const Tiling tiling : {Tiling::kFlopBalanced, Tiling::kUniform}) {
        for (const Schedule schedule : {Schedule::kDynamic, Schedule::kStatic}) {
          for (const std::int64_t tiles : tiling_sweep_tile_counts()) {
            Config config;
            config.strategy = MaskStrategy::kMaskFirst;  // no co-iteration
            config.accumulator = acc;
            config.marker_width = MarkerWidth::k32;
            config.tiling = tiling;
            config.schedule = schedule;
            config.num_tiles = tiles;
            config.threads = threads;
            TilingPoint point{name, acc, tiling, schedule, tiles,
                              time_kernel(a, config, timing, name)};
            if (on_point) {
              on_point(point);
            }
            points.push_back(std::move(point));
          }
        }
      }
    }
  }
  return points;
}

inline std::string tiling_config_label(const TilingPoint& p,
                                       bool include_tiles) {
  std::string label;
  label += to_string(p.tiling);
  label += '/';
  label += to_string(p.schedule);
  label += '/';
  label += to_string(p.accumulator);
  if (include_tiles) {
    label += '/';
    label += std::to_string(p.tiles);
  }
  return label;
}

}  // namespace tilq::bench
