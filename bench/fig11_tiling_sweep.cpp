// Fig 11: execution time vs number of tiles, one series per (accumulator,
// tiling, schedule) combination, one block per graph. The paper's trends to
// look for in the output:
//   * road graphs (europe_osm, GAP-road): nearly flat — tiling barely
//     matters when every row costs the same;
//   * social/web graphs: uniform tiling is poor at low tile counts and only
//     approaches FLOP-balanced tiling as tiles shrink;
//   * every curve eventually rises at very high tile counts (scheduling
//     overhead).
#include "tiling_sweep.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(0.5);
  tilq::bench::print_header("Fig 11: time vs tile count", scale);
  tilq::bench::GraphCache cache(scale);

  auto timing = tilq::bench::bench_timing();
  timing.max_iterations = 5;

  std::string current;
  tilq::bench::run_tiling_sweep(
      cache, timing, [&](const tilq::bench::TilingPoint& p) {
        if (p.matrix != current) {
          current = p.matrix;
          std::printf("\n-- %s (n=%lld, nnz=%lld) --\n", current.c_str(),
                      static_cast<long long>(cache.get(current).rows()),
                      static_cast<long long>(cache.get(current).nnz()));
          std::printf("%-28s %8s %10s\n", "series", "tiles", "ms");
        }
        std::printf("%-28s %8lld %10.2f\n",
                    tilq::bench::tiling_config_label(p, false).c_str(),
                    static_cast<long long>(p.tiles), p.ms);
        std::printf("CSV,fig11,%s,%s,%s,%s,%lld,%.3f\n", p.matrix.c_str(),
                    to_string(p.accumulator), to_string(p.tiling),
                    to_string(p.schedule), static_cast<long long>(p.tiles),
                    p.ms);
      });
  return 0;
}
