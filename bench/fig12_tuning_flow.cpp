// Fig 12: the staged performance sweep and tuning flow, run end-to-end on
// two contrasting graphs (a road network, where nothing matters much, and
// the circuit analogue, where stage 2 changes everything). Prints the best
// configuration after each stage so the flow's contribution is visible.
#include "bench_util.hpp"

namespace {

double best_of(const std::vector<tilq::TunerTrial>& trials, double incumbent) {
  double best = incumbent;
  for (const tilq::TunerTrial& trial : trials) {
    best = std::min(best, trial.ms);
  }
  return best;
}

}  // namespace

int main() {
  const double scale = tilq::bench::bench_scale(0.5);
  tilq::bench::print_header("Fig 12: staged tuning flow", scale);
  tilq::bench::GraphCache cache(scale);

  for (const char* name : {"GAP-road", "circuit5M"}) {
    const tilq::GraphMatrix& a = cache.get(name);
    std::printf("\n-- %s (n=%lld, nnz=%lld) --\n", name,
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.nnz()));

    tilq::TunerOptions options;
    options.tile_counts = {16, 64, 256, 1024};
    options.kappas = {0.01, 0.1, 1.0, 10.0};
    options.timing.budget_seconds = 0.15;
    options.timing.max_iterations = 4;
    options.threads = tilq::bench::bench_threads();

    const tilq::TunerReport report =
        tilq::tune<tilq::PlusTimes<double>>(a, a, a, options);

    const double stage1 =
        best_of(report.stage_tiling, std::numeric_limits<double>::infinity());
    const double stage2 = best_of(report.stage_coiteration, stage1);
    const double stage3 = best_of(report.stage_accumulator, stage2);
    std::printf("stage 1 (tiling/scheduling): best %10.2f ms over %zu trials\n",
                stage1, report.stage_tiling.size());
    std::printf("stage 2 (+ co-iteration):    best %10.2f ms over %zu trials\n",
                stage2, report.stage_coiteration.size());
    std::printf("stage 3 (+ marker width):    best %10.2f ms over %zu trials\n",
                stage3, report.stage_accumulator.size());
    std::printf("winner: %s\n", report.best.describe().c_str());
    std::printf("CSV,fig12,%s,%.3f,%.3f,%.3f\n", name, stage1, stage2, stage3);

    // Re-measure the winner under the metrics harness so one record
    // attributes its counters (the staged trials themselves are not
    // emitted). Skipped entirely when metrics are off.
    if (tilq::metrics_enabled()) {
      (void)tilq::bench::time_kernel(a, report.best, options.timing, name);
    }
  }
  return 0;
}
