// Table I: the matrix inventory. Prints each collection entry with the
// paper's real (n, nnz) alongside the synthetic analogue actually used in
// this reproduction, plus the structural features driving the experiments
// (degree skew, rail rows).
#include "bench_util.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(1.0);
  tilq::bench::print_header("Table I: matrices (paper vs synthetic analogue)",
                            scale);

  std::printf("%-16s %-8s | %12s %12s | %9s %11s | %8s %8s %9s\n", "name",
              "kind", "paper n", "paper nnz", "ours n", "ours nnz", "mean_deg",
              "max_deg", "p99_deg");
  for (const tilq::CollectionEntry& entry : tilq::collection_entries()) {
    const tilq::GraphMatrix graph =
        tilq::make_collection_graph(entry.name, scale);
    const auto stats = tilq::compute_stats(graph);
    std::printf("%-16s %-8s | %12lld %12lld | %9lld %11lld | %8.1f %8lld %9lld\n",
                entry.name.c_str(), to_string(entry.kind),
                static_cast<long long>(entry.paper_n),
                static_cast<long long>(entry.paper_nnz),
                static_cast<long long>(stats.rows),
                static_cast<long long>(stats.nnz), stats.mean_row_nnz,
                static_cast<long long>(stats.max_row_nnz),
                static_cast<long long>(stats.p99_row_nnz));
    std::printf("CSV,table1,%s,%s,%lld,%lld,%lld,%lld,%.2f,%lld\n",
                entry.name.c_str(), to_string(entry.kind),
                static_cast<long long>(entry.paper_n),
                static_cast<long long>(entry.paper_nnz),
                static_cast<long long>(stats.rows),
                static_cast<long long>(stats.nnz), stats.mean_row_nnz,
                static_cast<long long>(stats.max_row_nnz));
  }
  return 0;
}
