// Self-tuning gate (docs/TUNING.md): replays the same mixed masked-SpGEMM
// stream through two engines — one serving every query on the heuristic
// model's predicted config, one with the online bandit enabled — and
// checks the learning loop actually pays:
//
//   * on every graph kind the self-tuned engine's steady-state median
//     time-per-query is no worse than the heuristic engine's (>= the
//     --min-ratio floor). A kind whose bandit converged onto arm 0 — the
//     caller's own config — is a tie by construction (both engines run
//     the identical plan) and is exempt from the floor, which would
//     otherwise gate on measurement noise around 1.0;
//   * on at least one kind it is >= --want-speedup faster (the heuristic
//     never predicts the blocked execution space, which the arm table
//     carries — circuit-style rail graphs are where it should win);
//   * every result from both engines is bit-identical to the one-shot
//     oracle — an arm switch changes time, never values;
//   * the bandit converges: every kind's fingerprint freezes during the
//     learning window, so the measured window prices the frozen arm, not
//     exploration noise.
//
// Exit code 0 only if all of the above hold. Runs argument-free with
// small defaults. CI's autotune-smoke job runs at reduced --scale, where
// queries are sub-millisecond and medians jitter a few percent, so it
// relaxes the floor to --min-ratio 0.95; the default-scale gate keeps
// the strict 1.0 floor.
//
// Flags: --queries N       measured queries per kind (default 25)
//        --learn N         learning queries per kind (default 48)
//        --reps R          best-of repetitions per measured query (default 3)
//        --scale S         node-count multiplier (default 1.0)
//        --seed S          graph + bandit seed (default 20250809)
//        --min-ratio R     per-kind floor on heuristic/tuned (default 1.0)
//        --want-speedup R  required best-kind ratio (default 1.2)
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/masked_spgemm.hpp"
#include "core/model.hpp"
#include "gen/collection.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/road_network.hpp"

namespace {

using tilq::Csr;
using I = std::int64_t;
using SR = tilq::PlusTimes<double>;

bool bit_identical(const Csr<double, I>& x, const Csr<double, I>& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() && x.nnz() == y.nnz() &&
         std::memcmp(x.row_ptr().data(), y.row_ptr().data(),
                     x.row_ptr().size_bytes()) == 0 &&
         std::memcmp(x.col_idx().data(), y.col_idx().data(),
                     x.col_idx().size_bytes()) == 0 &&
         std::memcmp(x.values().data(), y.values().data(),
                     x.values().size_bytes()) == 0;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? values[n / 2]
                              : 0.5 * (values[n / 2 - 1] + values[n / 2]));
}

/// One submit + get, wall-clocked from the caller (queue + run + compact —
/// the latency a serving client actually sees).
template <class Engine>
double timed_query(Engine& engine, const tilq::GraphMatrix& g,
                   const tilq::Config& config, const Csr<double, I>& oracle,
                   std::uint64_t* mismatched) {
  const auto start = std::chrono::steady_clock::now();
  const Csr<double, I> got = engine.submit(g, g, g, config).get();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (!bit_identical(oracle, got)) {
    ++*mismatched;
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  int queries = 25;
  int learn = 48;
  int reps = 3;
  double scale = 1.0;
  std::uint64_t seed = 20250809;
  double min_ratio = 1.0;
  double want_speedup = 1.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--learn") == 0 && i + 1 < argc) {
      learn = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::max(0.05, std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-ratio") == 0 && i + 1 < argc) {
      min_ratio = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--want-speedup") == 0 && i + 1 < argc) {
      want_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  const auto scaled = [&](std::int64_t n) {
    return std::max<std::int64_t>(64, static_cast<std::int64_t>(
                                          static_cast<double>(n) * scale));
  };

  // The stream kinds: uniform (er), skewed (rmat), banded (road), and
  // band+rails (circuit) — the shapes the paper's Table 1 collection
  // spans, each one structural fingerprint resubmitted many times.
  struct Kind {
    const char* name;
    tilq::GraphMatrix graph;
  };
  std::vector<Kind> kinds;
  {
    tilq::ErdosRenyiParams er;
    er.nodes = scaled(1 << 12);
    er.edges = 8 * er.nodes;
    er.seed = seed;
    kinds.push_back({"er", tilq::generate_erdos_renyi(er)});
    tilq::RmatParams rm;
    rm.scale = 12;
    while ((std::int64_t{1} << rm.scale) > scaled(1 << 12) && rm.scale > 6) {
      --rm.scale;
    }
    rm.edge_factor = 8;
    rm.seed = seed + 1;
    kinds.push_back({"rmat", tilq::generate_rmat(rm)});
    tilq::RoadNetworkParams road;
    road.width = scaled(128);
    road.height = scaled(128);
    road.seed = seed + 2;
    kinds.push_back({"road", tilq::generate_road_network(road)});
    // The circuit kind is the collection's stokes analogue — band + hub
    // rails at the size where the cache-blocked execution space wins big
    // (the blocked ablation's strongest graph) and the heuristic model,
    // which never predicts blocking, leaves the most on the table.
    kinds.push_back(
        {"circuit",
         tilq::make_collection_graph("stokes", std::max(0.02, 0.3 * scale))});
  }

  std::uint64_t mismatched = 0;
  double worst_ratio = std::numeric_limits<double>::infinity();
  double best_ratio = 0.0;
  const char* best_kind = "";
  std::uint64_t total_converged = 0;
  std::uint64_t unconverged_kinds = 0;

  for (const Kind& kind : kinds) {
    const tilq::GraphMatrix& g = kind.graph;
    tilq::Engine<SR> heuristic_engine{};  // autotune off: the baseline
    tilq::EngineOptions tuned_options;
    tuned_options.autotune.enabled = true;
    tuned_options.autotune.seed = seed;
    tilq::Engine<SR> tuned_engine(tuned_options);
    // Both engines serve the model's prediction — the tuned one may leave
    // it for a better arm, the baseline is stuck with it.
    const tilq::Config predicted =
        tilq::predict_config(g, g, g, heuristic_engine.threads());
    const Csr<double, I> oracle =
        tilq::masked_spgemm<SR>(g, g, g, predicted);

    // Learning window: the tuned engine prices its arms; the baseline
    // just warms its plan cache so both measured windows are cache-hits.
    (void)timed_query(heuristic_engine, g, predicted, oracle, &mismatched);
    for (int i = 0; i < learn; ++i) {
      (void)timed_query(tuned_engine, g, predicted, oracle, &mismatched);
    }

    // Measured window: best-of-`reps` per query on each engine,
    // interleaved so drift hits both sides alike; medians compared.
    std::vector<double> h_ms, t_ms;
    for (int q = 0; q < queries; ++q) {
      double h = std::numeric_limits<double>::infinity();
      double t = std::numeric_limits<double>::infinity();
      for (int r = 0; r < reps; ++r) {
        h = std::min(h, timed_query(heuristic_engine, g, predicted, oracle,
                                    &mismatched));
        t = std::min(t, timed_query(tuned_engine, g, predicted, oracle,
                                    &mismatched));
      }
      h_ms.push_back(h);
      t_ms.push_back(t);
    }
    const double h_med = median(h_ms);
    const double t_med = median(t_ms);
    const double ratio = t_med > 0.0 ? h_med / t_med : 1.0;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_kind = kind.name;
    }

    const tilq::EngineStats stats = tuned_engine.stats();
    total_converged += stats.autotune_converged;
    if (stats.autotune_converged == 0) {
      ++unconverged_kinds;
    }
    std::string winner = "(baseline)";
    bool tied_on_baseline = false;
    if (const tilq::ConfigBandit* bandit = tuned_engine.autotune()) {
      const std::uint64_t fp = tilq::detail::structural_fingerprint(g, g, g);
      const int best = bandit->best_arm(fp);
      const std::vector<tilq::ArmStats> arms = bandit->arms(fp);
      if (best >= 0 && static_cast<std::size_t>(best) < arms.size()) {
        winner = arms[static_cast<std::size_t>(best)].config.describe();
      }
      // A kind whose bandit converged onto arm 0 serves the identical
      // config the baseline does: both engines run the same plan, so the
      // measured ratio is pure noise around 1.0 and asserting a floor on
      // it would gate on the noise, not the tuner. Such ties pass the
      // no-regression check by construction.
      tied_on_baseline = best == 0;
    }
    if (!tied_on_baseline) {
      worst_ratio = std::min(worst_ratio, ratio);
    }
    std::printf("self_tuning: %-8s heuristic=%.3fms tuned=%.3fms "
                "ratio=%.3f%s explorations=%" PRIu64 " converged=%" PRIu64
                "\n  best arm: %s\n",
                kind.name, h_med, t_med, ratio,
                tied_on_baseline ? " (tied: baseline arm)" : "",
                stats.autotune_explorations, stats.autotune_converged,
                winner.c_str());
    std::printf("CSV,self_tuning,%s,%.4f,%.4f,%.4f,%" PRIu64 ",%" PRIu64
                "\n",
                kind.name, h_med, t_med, ratio, stats.autotune_explorations,
                stats.autotune_converged);
  }

  std::printf("self_tuning: worst-ratio=%.3f best-ratio=%.3f (%s) "
              "mismatched=%" PRIu64 "\n",
              worst_ratio, best_ratio, best_kind, mismatched);

  bool ok = true;
  if (mismatched != 0) {
    std::fprintf(stderr, "FAIL: %" PRIu64 " results were not bit-identical "
                         "to the oracle\n", mismatched);
    ok = false;
  }
  if (worst_ratio < min_ratio) {
    std::fprintf(stderr,
                 "FAIL: self-tuned worse than heuristic on some kind "
                 "(worst ratio %.3f < %.3f)\n",
                 worst_ratio, min_ratio);
    ok = false;
  }
  if (best_ratio < want_speedup) {
    std::fprintf(stderr,
                 "FAIL: no kind reached the %.2fx speedup (best %.3f on "
                 "%s)\n",
                 want_speedup, best_ratio, best_kind);
    ok = false;
  }
  if (unconverged_kinds != 0) {
    std::fprintf(stderr, "FAIL: %" PRIu64 " kinds never converged "
                         "(total converged fingerprints %" PRIu64 ")\n",
                 unconverged_kinds, total_converged);
    ok = false;
  }
  std::printf("self_tuning: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
