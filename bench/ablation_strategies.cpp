// Ablation (§III-B): all four iteration strategies plus the two-phase
// (unfused SpGEMM + post-hoc masking) variant the paper argues is never
// worth implementing. Quantifies, per graph kind:
//   * what fusing the mask saves (two-phase vs mask-first),
//   * what loading the mask first saves (vanilla vs mask-first),
//   * where co-iteration wins and loses (co-iterate vs mask-first),
//   * what the hybrid recovers (hybrid ~ min of the two).
// The vanilla and two-phase variants are run once each (they are the slow
// cases, and on the circuit analogue they are near-pathological).
#include "bench_util.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(0.5);
  tilq::bench::print_header("Ablation: iteration strategies + two-phase",
                            scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  const auto timing = tilq::bench::bench_timing();
  using SR = tilq::PlusTimes<double>;

  std::printf("%-16s %12s %12s %12s %12s %12s\n", "graph", "two_phase",
              "vanilla", "mask_first", "co_iterate", "hybrid");
  for (const std::string& name : tilq::collection_names()) {
    const tilq::GraphMatrix& a = cache.get(name);

    tilq::Config base;
    base.tiling = tilq::Tiling::kFlopBalanced;
    base.schedule = tilq::Schedule::kDynamic;
    base.num_tiles = std::min<std::int64_t>(2048, a.rows());
    base.threads = threads;

    // Single-shot for the known-slow variants.
    tilq::WallTimer two_phase_timer;
    (void)tilq::two_phase_masked_spgemm<SR>(a, a, a);
    const double two_phase_ms = two_phase_timer.milliseconds();

    tilq::Config vanilla = base;
    vanilla.strategy = tilq::MaskStrategy::kVanilla;
    const tilq::MetricsSnapshot vanilla_before = tilq::metrics_snapshot();
    tilq::WallTimer vanilla_timer;
    (void)tilq::masked_spgemm<SR>(a, a, a, vanilla);
    const double vanilla_ms = vanilla_timer.milliseconds();
    tilq::bench::emit_single_run_metrics(vanilla_before, name,
                                         vanilla.describe(), vanilla_ms);

    double fused_ms[3];
    int idx = 0;
    for (const tilq::MaskStrategy strategy :
         {tilq::MaskStrategy::kMaskFirst, tilq::MaskStrategy::kCoIterate,
          tilq::MaskStrategy::kHybrid}) {
      tilq::Config config = base;
      config.strategy = strategy;
      config.coiteration_factor = 1.0;
      fused_ms[idx++] = tilq::bench::time_kernel(a, config, timing, name);
    }

    std::printf("%-16s %12.2f %12.2f %12.2f %12.2f %12.2f\n", name.c_str(),
                two_phase_ms, vanilla_ms, fused_ms[0], fused_ms[1],
                fused_ms[2]);
    std::printf("CSV,ablation,%s,%.3f,%.3f,%.3f,%.3f,%.3f\n", name.c_str(),
                two_phase_ms, vanilla_ms, fused_ms[0], fused_ms[1],
                fused_ms[2]);
  }
  return 0;
}
