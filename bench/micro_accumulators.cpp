// Microbenchmarks (google-benchmark) for the accumulator primitives that
// §III-C reasons about: mask loading, accumulate hit/miss, gather, and the
// per-row reset — for both implementations, across marker widths and row
// sizes. These isolate the constants behind the Fig 13 curves: the dense
// accumulator's reset cost grows with the state array it must sweep on
// overflow, while the hash accumulator pays probing instead.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "accum/bitmap_accumulator.hpp"
#include "accum/dense_accumulator.hpp"
#include "accum/hash_accumulator.hpp"
#include "core/semiring.hpp"
#include "support/rng.hpp"

namespace {

using tilq::DenseAccumulator;
using tilq::HashAccumulator;
using tilq::ResetPolicy;
using tilq::Xoshiro256;
using I = std::int64_t;
using SR = tilq::PlusTimes<double>;

constexpr I kDimension = 1 << 16;  // output columns for the dense variant

std::vector<I> make_mask(I entries, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<I> cols;
  cols.reserve(static_cast<std::size_t>(entries));
  // Sorted distinct columns, uniform over the dimension.
  const I stride = kDimension / entries;
  for (I j = 0; j < entries; ++j) {
    cols.push_back(j * stride +
                   static_cast<I>(rng.uniform_below(
                       static_cast<std::uint64_t>(std::max<I>(1, stride)))));
  }
  return cols;
}

/// One full row protocol: set mask, accumulate over it twice (hits), gather,
/// reset. `state.range(0)` = mask entries per row.
template <class Acc>
void row_protocol(benchmark::State& state, Acc& acc) {
  const auto mask = make_mask(state.range(0), 7);
  double sink = 0.0;
  for (auto _ : state) {
    acc.set_mask(mask);
    for (const I j : mask) {
      acc.accumulate(j, 1.0);
      acc.accumulate(j, 2.0);
    }
    acc.gather(std::span<const I>(mask), [&](I, double v) { sink += v; });
    acc.finish_row(mask);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}

template <class Marker>
void BM_DenseRow(benchmark::State& state) {
  DenseAccumulator<SR, I, Marker> acc(kDimension);
  row_protocol(state, acc);
}

template <class Marker>
void BM_HashRow(benchmark::State& state) {
  HashAccumulator<SR, I, Marker> acc(state.range(0));
  row_protocol(state, acc);
}

void BM_BitmapRow(benchmark::State& state) {
  tilq::BitmapAccumulator<SR, I> acc(kDimension);
  row_protocol(state, acc);
}

void BM_DenseRowExplicitReset(benchmark::State& state) {
  DenseAccumulator<SR, I, std::uint32_t> acc(kDimension, ResetPolicy::kExplicit);
  row_protocol(state, acc);
}

void BM_HashRowExplicitReset(benchmark::State& state) {
  HashAccumulator<SR, I, std::uint32_t> acc(state.range(0),
                                            ResetPolicy::kExplicit);
  row_protocol(state, acc);
}

/// Accumulate misses: the mask-probe rejection path of Fig 5.
void BM_DenseMiss(benchmark::State& state) {
  DenseAccumulator<SR, I, std::uint32_t> acc(kDimension);
  const auto mask = make_mask(64, 3);
  acc.set_mask(mask);
  Xoshiro256 rng(9);
  std::vector<I> probes(1024);
  for (auto& p : probes) {
    // Odd offsets beyond the mask's stride grid: guaranteed misses mostly.
    p = static_cast<I>(rng.uniform_below(kDimension));
  }
  for (auto _ : state) {
    for (const I j : probes) {
      benchmark::DoNotOptimize(acc.accumulate(j, 1.0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_HashMiss(benchmark::State& state) {
  HashAccumulator<SR, I, std::uint32_t> acc(64);
  const auto mask = make_mask(64, 3);
  acc.set_mask(mask);
  Xoshiro256 rng(9);
  std::vector<I> probes(1024);
  for (auto& p : probes) {
    p = static_cast<I>(rng.uniform_below(kDimension));
  }
  for (auto _ : state) {
    for (const I j : probes) {
      benchmark::DoNotOptimize(acc.accumulate(j, 1.0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

}  // namespace

BENCHMARK_TEMPLATE(BM_DenseRow, std::uint8_t)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_DenseRow, std::uint16_t)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_DenseRow, std::uint32_t)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_DenseRow, std::uint64_t)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_HashRow, std::uint8_t)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_HashRow, std::uint16_t)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_HashRow, std::uint32_t)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_HashRow, std::uint64_t)->Arg(64)->Arg(1024);
BENCHMARK(BM_BitmapRow)->Arg(64)->Arg(1024);
BENCHMARK(BM_DenseRowExplicitReset)->Arg(64)->Arg(1024);
BENCHMARK(BM_HashRowExplicitReset)->Arg(64)->Arg(1024);
BENCHMARK(BM_DenseMiss);
BENCHMARK(BM_HashMiss);

BENCHMARK_MAIN();
