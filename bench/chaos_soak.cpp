// Chaos-soak driver (docs/ROBUSTNESS.md): the resilience contract of
// tests/chaos_test.cpp at operator scale, as a standalone gate for CI's
// sanitizer job. Replays a mixed masked-SpGEMM stream through the batch
// engine while engine-level fault sites fire probabilistically, then
// checks:
//
//   * every job either completes bit-identical to its fault-free oracle
//     or fails with a typed taxonomy error (tilq::Error) — anything else
//     escapes main() and crashes the process, which IS the gate;
//   * counters conserve: submitted = completed + failed, in_flight = 0;
//   * with retries on, most of the stream survives the faults;
//   * after the fault phase plus two clean health epochs the engine
//     reports healthy again.
//
// Exit code 0 only if all of the above hold. Runs argument-free with
// small defaults; CI passes --jobs/--rate to soak harder under ASan.
//
// Flags: --jobs N        stream length (default 600)
//        --rate R        per-site fault probability (default 0.015)
//        --seed S        fault + stream seed (default 20240808)
//        --retries K     attempts per job (default 3)
//        --budget-mb M   engine memory budget, 0 = unlimited (default 8)
//        --window W      in-flight submission window (default 8)
//
// The fault sites are armed through the TILQ_FAULT grammar (configure()),
// so this binary also soaks the operator-facing spec path. When the
// TILQ_FAULT environment variable is set it wins: the env spec armed at
// static init (seeded by TILQ_FAULT_SEED) is left in place and --rate is
// ignored, so CI can drive the soak entirely through the env gate.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "support/fault.hpp"

namespace {

using tilq::Csr;
using I = std::int64_t;
using SR = tilq::PlusTimes<double>;

struct Problem {
  tilq::GraphMatrix graph;
  Csr<double, I> oracle;
  tilq::Config config;
};

bool bit_identical(const Csr<double, I>& x, const Csr<double, I>& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() && x.nnz() == y.nnz() &&
         std::memcmp(x.row_ptr().data(), y.row_ptr().data(),
                     x.row_ptr().size_bytes()) == 0 &&
         std::memcmp(x.col_idx().data(), y.col_idx().data(),
                     x.col_idx().size_bytes()) == 0 &&
         std::memcmp(x.values().data(), y.values().data(),
                     x.values().size_bytes()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 600;
  double rate = 0.015;
  std::uint64_t seed = 20240808;
  int retries = 3;
  int budget_mb = 8;
  std::size_t window_size = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      budget_mb = std::max(0, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window_size = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  // The stream: a uniform graph (self-masked A*A, the triangle-counting
  // shape) and a skewed one, across the three accumulators and the
  // blocked execution space.
  std::vector<Problem> problems;
  {
    tilq::ErdosRenyiParams er;
    er.nodes = 1 << 9;
    er.edges = 1 << 12;
    er.seed = seed;
    const tilq::GraphMatrix uniform = tilq::generate_erdos_renyi(er);
    tilq::RmatParams rm;
    rm.scale = 9;
    rm.edge_factor = 8;
    rm.seed = seed + 1;
    const tilq::GraphMatrix skewed = tilq::generate_rmat(rm);
    const tilq::AccumulatorKind accumulators[] = {
        tilq::AccumulatorKind::kHash, tilq::AccumulatorKind::kDense,
        tilq::AccumulatorKind::kBitmap};
    for (const tilq::GraphMatrix& graph : {uniform, skewed}) {
      for (int mode = 0; mode < 3; ++mode) {
        Problem p;
        p.graph = graph;
        p.config.accumulator = accumulators[mode];
        if (mode == 2) {
          p.config.mode = tilq::Strategy::kBlocked;
        }
        p.oracle = tilq::masked_spgemm<SR>(p.graph, p.graph, p.graph,
                                           p.config);
        problems.push_back(std::move(p));
      }
    }
  }

  tilq::EngineOptions options;
  options.retry.max_attempts = retries;
  options.retry.backoff_base_ms = 0.0;  // soak throughput over realism
  options.retry.seed = seed;
  options.memory_budget_bytes =
      static_cast<std::uint64_t>(budget_mb) << 20;
  tilq::Engine<SR> engine(options);

  const bool env_spec = std::getenv("TILQ_FAULT") != nullptr;
  if (env_spec) {
    std::printf("chaos_soak: TILQ_FAULT set, using the env spec (--rate "
                "ignored)\n");
  } else if (rate > 0.0) {
    tilq::fault::set_seed(seed);
    char spec[256];
    std::snprintf(spec, sizeof spec,
                  "engine-submit-alloc@%.4f,engine-pool-reserve@%.4f,"
                  "plan-fingerprint@%.4f,engine-retry-replan@%.4f",
                  rate, rate, rate, rate / 2.0);
    tilq::fault::configure(spec);
  }

  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t mismatched = 0;
  std::vector<std::pair<tilq::Engine<SR>::JobHandle, std::size_t>> window;
  const auto drain_one = [&](std::pair<tilq::Engine<SR>::JobHandle, std::size_t>& slot) {
    try {
      const Csr<double, I> got = slot.first.get();
      if (!bit_identical(problems[slot.second].oracle, got)) {
        ++mismatched;
      }
      ++completed;
    } catch (const tilq::Error&) {
      ++failed;  // the allowed failure outcome; anything else escapes
    }
  };
  for (int i = 0; i < jobs; ++i) {
    const std::size_t which = static_cast<std::size_t>(i) % problems.size();
    const Problem& p = problems[which];
    window.emplace_back(engine.submit(p.graph, p.graph, p.graph, p.config),
                        which);
    if (window.size() >= window_size) {
      drain_one(window.front());
      window.erase(window.begin());
    }
  }
  for (auto& slot : window) {
    drain_one(slot);
  }
  window.clear();

  tilq::fault::disarm_all();
  // Two clean health epochs: recovery must be provable, not probable.
  const Problem& clean = problems.front();
  const std::uint64_t cooldown = 2 * options.health.epoch_events;
  for (std::uint64_t i = 0; i < cooldown; ++i) {
    const Csr<double, I> got =
        engine.submit(clean.graph, clean.graph, clean.graph, clean.config)
            .get();
    if (!bit_identical(clean.oracle, got)) {
      ++mismatched;
    }
    ++completed;
  }

  const tilq::EngineStats stats = engine.stats();
  std::printf(
      "chaos_soak: jobs=%d rate=%.4f seed=%" PRIu64
      " completed=%" PRIu64 " failed=%" PRIu64 " mismatched=%" PRIu64 "\n",
      jobs, rate, seed, completed, failed, mismatched);
  std::printf("chaos_soak: engine %s\n", tilq::describe(stats).c_str());
  std::printf(
      "CSV,chaos_soak,%d,%.4f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
      ",%" PRIu64 ",%s\n",
      jobs, rate, completed, failed, stats.retries, stats.brownouts,
      stats.jobs_retried, to_string(stats.health));

  bool ok = true;
  if (mismatched != 0) {
    std::fprintf(stderr, "FAIL: %" PRIu64 " completed jobs were not "
                         "bit-identical to their oracle\n", mismatched);
    ok = false;
  }
  if (stats.jobs_submitted != completed + failed) {
    std::fprintf(stderr,
                 "FAIL: counters do not conserve: submitted=%" PRIu64
                 " but completed+failed=%" PRIu64 "\n",
                 stats.jobs_submitted, completed + failed);
    ok = false;
  }
  if (stats.in_flight != 0) {
    std::fprintf(stderr, "FAIL: %" PRIu64 " jobs still in flight\n",
                 stats.in_flight);
    ok = false;
  }
  if (stats.health != tilq::EngineHealth::kHealthy) {
    std::fprintf(stderr, "FAIL: engine finished %s, expected healthy\n",
                 to_string(stats.health));
    ok = false;
  }
  if ((env_spec || rate > 0.0) && failed + stats.retries == 0) {
    std::fprintf(stderr,
                 "FAIL: no faults ever fired — the soak tested nothing\n");
    ok = false;
  }
  if (completed < failed) {
    std::fprintf(stderr, "FAIL: most of the stream should survive "
                         "(completed=%" PRIu64 " failed=%" PRIu64 ")\n",
                 completed, failed);
    ok = false;
  }
  return ok ? 0 : 1;
}
