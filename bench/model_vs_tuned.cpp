// Validation of the model-based predictor (the paper's §VII direction:
// tune "at execution time, rather than offline"). For every collection
// graph: run (1) the zero-measurement predicted config, (2) the staged
// Fig-12 tuner's best config, and (3) the worst config the tuner saw, and
// report how close prediction gets to exhaustive tuning.
#include "bench_util.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(0.5);
  tilq::bench::print_header("Model-predicted config vs staged tuning", scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  const auto timing = tilq::bench::bench_timing();
  using SR = tilq::PlusTimes<double>;

  std::printf("%-16s %10s %10s %10s | %11s\n", "graph", "model_ms", "tuned_ms",
              "worst_ms", "model/tuned");
  double worst_ratio = 0.0;
  for (const std::string& name : tilq::collection_names()) {
    const tilq::GraphMatrix& a = cache.get(name);

    const tilq::Config predicted = tilq::predict_config(a, a, a, threads);
    const double model_ms = tilq::bench::time_kernel(a, predicted, timing, name);

    tilq::TunerOptions options;
    options.tile_counts = {64, 256, 1024};
    options.kappas = {0.1, 1.0, 10.0};
    options.timing.budget_seconds = 0.1;
    options.timing.max_iterations = 3;
    options.threads = threads;
    const tilq::TunerReport report = tilq::tune<SR>(a, a, a, options);

    double worst_ms = report.best_ms;
    for (const auto* stage : {&report.stage_tiling, &report.stage_coiteration,
                              &report.stage_accumulator}) {
      for (const tilq::TunerTrial& trial : *stage) {
        worst_ms = std::max(worst_ms, trial.ms);
      }
    }

    const double ratio = model_ms / report.best_ms;
    worst_ratio = std::max(worst_ratio, ratio);
    std::printf("%-16s %10.2f %10.2f %10.2f | %11.2f\n", name.c_str(), model_ms,
                report.best_ms, worst_ms, ratio);
    std::printf("CSV,model,%s,%.3f,%.3f,%.3f\n", name.c_str(), model_ms,
                report.best_ms, worst_ms);
  }
  std::printf("\nworst model/tuned ratio: %.2f (1.0 = prediction matches "
              "exhaustive tuning)\n", worst_ratio);
  return 0;
}
