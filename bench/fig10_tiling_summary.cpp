// Fig 10: relative performance of tiling and scheduling strategies — for
// each (tiling, schedule, accumulator, tile-count) configuration, the
// percentage of matrices that run within 10% of that matrix's best
// configuration. The paper's headline: FLOP-balanced tiling at an
// intermediate tile count with dynamic scheduling is within 10% of best on
// 80-90% of matrices.
#include <map>

#include "tiling_sweep.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(0.4);
  tilq::bench::print_header(
      "Fig 10: % of matrices within 10% of the best configuration", scale);
  tilq::bench::GraphCache cache(scale);

  auto timing = tilq::bench::bench_timing();
  timing.max_iterations = 4;
  timing.budget_seconds = 0.15;

  const auto points = tilq::bench::run_tiling_sweep(cache, timing);

  // Convert to the shared Sample form; the config identity includes the
  // tile count (the Fig 10 x-axis). Per the figure caption configurations
  // are "split by accumulator": each accumulator is normalized against its
  // own per-matrix best, so the matrix identity carries the accumulator.
  std::vector<tilq::bench::Sample> samples;
  samples.reserve(points.size());
  for (const auto& p : points) {
    samples.push_back({tilq::bench::tiling_config_label(p, true),
                       p.matrix + "/" + to_string(p.accumulator), p.ms});
  }
  const auto summary = tilq::bench::percent_within(samples, 0.10);

  // Print grouped as in the figure: one block per (tiling, schedule), one
  // line per tile count, one column per accumulator.
  for (const tilq::Tiling tiling :
       {tilq::Tiling::kFlopBalanced, tilq::Tiling::kUniform}) {
    for (const tilq::Schedule schedule :
         {tilq::Schedule::kDynamic, tilq::Schedule::kStatic}) {
      std::printf("\n-- %s, %s --\n", to_string(tiling), to_string(schedule));
      std::printf("%8s %10s %10s\n", "tiles", "dense(%)", "hash(%)");
      for (const std::int64_t tiles : tilq::bench::tiling_sweep_tile_counts()) {
        double cells[2] = {0.0, 0.0};
        int idx = 0;
        for (const tilq::AccumulatorKind acc :
             {tilq::AccumulatorKind::kDense, tilq::AccumulatorKind::kHash}) {
          tilq::bench::TilingPoint key{"", acc, tiling, schedule, tiles, 0.0};
          const auto it =
              summary.find(tilq::bench::tiling_config_label(key, true));
          cells[idx++] = it != summary.end() ? it->second : 0.0;
        }
        std::printf("%8lld %10.0f %10.0f\n", static_cast<long long>(tiles),
                    cells[0], cells[1]);
        std::printf("CSV,fig10,%s,%s,%lld,%.1f,%.1f\n", to_string(tiling),
                    to_string(schedule), static_cast<long long>(tiles),
                    cells[0], cells[1]);
      }
    }
  }
  return 0;
}
