// Fig 13: relative performance of accumulator marker bit-widths. Per the
// paper's protocol: κ fixed to 1 (hybrid kernel), the tiling configuration
// fixed to the safe choice from the tiling stage (FLOP-balanced, dynamic,
// intermediate tile count), sweep the marker width 8/16/32/64 for both
// accumulators across the collection, and report the percentage of matrices
// within 10% of the best width. Paper shape: hash is robust until 8 bits;
// dense suffers at both 8 (reset storms) and 64 (state-array footprint),
// with a sweet spot at 32.
#include <map>
#include <vector>

#include "bench_util.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(0.7);
  tilq::bench::print_header("Fig 13: accumulator marker width", scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  auto timing = tilq::bench::bench_timing();
  timing.max_iterations = 8;

  const tilq::MarkerWidth widths[] = {tilq::MarkerWidth::k8, tilq::MarkerWidth::k16,
                                      tilq::MarkerWidth::k32, tilq::MarkerWidth::k64};

  std::vector<tilq::bench::Sample> samples;
  std::vector<std::pair<std::string, double>> bitmap_times;
  std::printf("%-16s %-6s | %10s %10s %10s %10s\n", "graph", "acc", "w8_ms",
              "w16_ms", "w32_ms", "w64_ms");
  for (const std::string& name : tilq::collection_names()) {
    const tilq::GraphMatrix& a = cache.get(name);
    for (const tilq::AccumulatorKind acc :
         {tilq::AccumulatorKind::kDense, tilq::AccumulatorKind::kHash}) {
      double ms[4];
      int idx = 0;
      for (const tilq::MarkerWidth width : widths) {
        tilq::Config config;
        config.strategy = tilq::MaskStrategy::kHybrid;
        config.coiteration_factor = 1.0;
        config.tiling = tilq::Tiling::kFlopBalanced;
        config.schedule = tilq::Schedule::kDynamic;
        config.num_tiles = std::min<std::int64_t>(2048, a.rows());
        config.accumulator = acc;
        config.marker_width = width;
        config.reset = tilq::ResetPolicy::kMarker;
        config.threads = threads;
        ms[idx] = tilq::bench::time_kernel(a, config, timing, name);
        // The matrix identity for the relative summary is (graph, acc): the
        // figure compares widths within each accumulator.
        std::string label = to_string(acc);
        label += "/w";
        label += std::to_string(bits(width));
        samples.push_back({label, name + "/" + to_string(acc), ms[idx]});
        ++idx;
      }
      std::printf("%-16s %-6s | %10.2f %10.2f %10.2f %10.2f\n", name.c_str(),
                  to_string(acc), ms[0], ms[1], ms[2], ms[3]);
      std::printf("CSV,fig13,%s,%s,%.3f,%.3f,%.3f,%.3f\n", name.c_str(),
                  to_string(acc), ms[0], ms[1], ms[2], ms[3]);
    }

    // Extension beyond the paper's sweep: the 1-bit bitmap accumulator
    // (explicit reset forced by the representation).
    {
      tilq::Config config;
      config.strategy = tilq::MaskStrategy::kHybrid;
      config.coiteration_factor = 1.0;
      config.tiling = tilq::Tiling::kFlopBalanced;
      config.schedule = tilq::Schedule::kDynamic;
      config.num_tiles = std::min<std::int64_t>(2048, a.rows());
      config.accumulator = tilq::AccumulatorKind::kBitmap;
      config.threads = threads;
      bitmap_times.emplace_back(name,
                                tilq::bench::time_kernel(a, config, timing, name));
    }
  }

  const auto summary = tilq::bench::percent_within(samples, 0.10);
  std::printf("\n%% of matrices within 10%% of best width:\n");
  std::printf("%8s %10s %10s\n", "width", "dense(%)", "hash(%)");
  for (const tilq::MarkerWidth width : widths) {
    const auto dense_it = summary.find(std::string("dense/w") +
                                       std::to_string(bits(width)));
    const auto hash_it =
        summary.find(std::string("hash/w") + std::to_string(bits(width)));
    std::printf("%8d %10.0f %10.0f\n", bits(width),
                dense_it != summary.end() ? dense_it->second : 0.0,
                hash_it != summary.end() ? hash_it->second : 0.0);
    std::printf("CSV,fig13_summary,%d,%.1f,%.1f\n", bits(width),
                dense_it != summary.end() ? dense_it->second : 0.0,
                hash_it != summary.end() ? hash_it->second : 0.0);
  }

  std::printf("\nextension: 1-bit bitmap accumulator (explicit reset):\n");
  std::printf("%-16s %10s\n", "graph", "bitmap_ms");
  for (const auto& [name, ms] : bitmap_times) {
    std::printf("%-16s %10.2f\n", name.c_str(), ms);
    std::printf("CSV,fig13_bitmap,%s,%.3f\n", name.c_str(), ms);
  }
  return 0;
}
