// Ablation: vertex ordering — the pre-processing dimension §V-A reserves
// for future work. Runs the tuned kernel on each graph under four labelings
// (natural, random-scrambled, descending-degree, RCM) and reports time and
// bandwidth. Expected shapes: road/lattice graphs are highly sensitive
// (natural ≈ RCM << random, locality is everything at degree ~2); skewed
// graphs care more about degree clustering than bandwidth.
#include "bench_util.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(0.5);
  tilq::bench::print_header("Ablation: vertex reordering", scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  const auto timing = tilq::bench::bench_timing();

  std::printf("%-16s | %9s %9s %9s %9s | %10s %10s\n", "graph", "natural",
              "random", "degree", "rcm", "bw_natural", "bw_rcm");
  for (const std::string& name : tilq::collection_names()) {
    const tilq::GraphMatrix natural =
        tilq::symmetrize(cache.get(name));  // symmetric permutations need it

    const auto scrambled =
        tilq::permute_symmetric(natural, tilq::random_order(natural.rows(), 7));
    const auto by_degree =
        tilq::permute_symmetric(natural, tilq::degree_order(natural));
    const auto by_rcm = tilq::permute_symmetric(natural, tilq::rcm_order(natural));

    tilq::Config config;
    config.strategy = tilq::MaskStrategy::kHybrid;
    config.num_tiles = std::min<std::int64_t>(1024, natural.rows());
    config.threads = threads;

    const double natural_ms =
        tilq::bench::time_kernel(natural, config, timing, name + "/natural");
    const double random_ms =
        tilq::bench::time_kernel(scrambled, config, timing, name + "/random");
    const double degree_ms =
        tilq::bench::time_kernel(by_degree, config, timing, name + "/degree");
    const double rcm_ms =
        tilq::bench::time_kernel(by_rcm, config, timing, name + "/rcm");

    std::printf("%-16s | %9.2f %9.2f %9.2f %9.2f | %10lld %10lld\n",
                name.c_str(), natural_ms, random_ms, degree_ms, rcm_ms,
                static_cast<long long>(tilq::bandwidth(natural)),
                static_cast<long long>(tilq::bandwidth(by_rcm)));
    std::printf("CSV,reorder,%s,%.3f,%.3f,%.3f,%.3f\n", name.c_str(),
                natural_ms, random_ms, degree_ms, rcm_ms);
  }
  return 0;
}
