// Fig 1: log-scale execution times for the masked-SpGEMM across the
// collection, comparing the SuiteSparse:GraphBLAS-like policy, the GrB-like
// policy, and the tuned tilq configuration. As in the paper, all three use
// the hash accumulator. The interesting shape: the policies mostly track
// each other, but each has outlier graphs (the circuit analogue punishes
// GrB's lack of co-iteration; the SS:GB heuristic occasionally picks the
// wrong accumulator), while the tuned configuration avoids the extremes.
#include "bench_util.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(1.0);
  tilq::bench::print_header("Fig 1: SS:GB-like vs GrB-like vs tuned", scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  const auto timing = tilq::bench::bench_timing();

  std::printf("%-16s %12s %12s %12s | %9s %9s\n", "graph", "ssgb_ms", "grb_ms",
              "tuned_ms", "ssgb/tuned", "grb/tuned");
  for (const std::string& name : tilq::collection_names()) {
    const tilq::GraphMatrix& a = cache.get(name);

    // SS:GB-like, forced to the hash accumulator as in the figure caption
    // ("All runs use a hash-based accumulator").
    tilq::Config ssgb = tilq::baselines::make_ssgb_config(
        tilq::compute_stats(a), tilq::total_flops(a, a), threads);
    ssgb.accumulator = tilq::AccumulatorKind::kHash;
    const double ssgb_ms = tilq::bench::time_kernel(a, ssgb, timing, name);

    const tilq::Config grb =
        tilq::baselines::make_grb_config(threads, tilq::AccumulatorKind::kHash);
    const double grb_ms = tilq::bench::time_kernel(a, grb, timing, name);

    // Tuned: the configuration §V converges to — FLOP-balanced tiles at an
    // intermediate count, dynamic scheduling, hybrid with kappa = 1,
    // 32-bit marker.
    tilq::Config tuned;
    tuned.tiling = tilq::Tiling::kFlopBalanced;
    tuned.schedule = tilq::Schedule::kDynamic;
    tuned.num_tiles = std::min<std::int64_t>(2048, a.rows() / 4 + 1);
    tuned.strategy = tilq::MaskStrategy::kHybrid;
    tuned.coiteration_factor = 1.0;
    tuned.accumulator = tilq::AccumulatorKind::kHash;
    tuned.marker_width = tilq::MarkerWidth::k32;
    tuned.threads = threads;
    const double tuned_ms = tilq::bench::time_kernel(a, tuned, timing, name);

    std::printf("%-16s %12.2f %12.2f %12.2f | %9.2f %9.2f\n", name.c_str(),
                ssgb_ms, grb_ms, tuned_ms, ssgb_ms / tuned_ms,
                grb_ms / tuned_ms);
    std::printf("CSV,fig1,%s,%.3f,%.3f,%.3f\n", name.c_str(), ssgb_ms, grb_ms,
                tuned_ms);
  }
  return 0;
}
