// Ablation: 2D (row x column) tiling vs the paper's 1D row tiling — the
// experiment §V-A defers to future work. Sweeps the column tile count at a
// fixed row tiling (FLOP-balanced, dynamic, intermediate count) on every
// graph. Column tiling shrinks the per-task B working set at the price of
// re-reading A rows once per column tile; expect it to help only when the
// B panel no longer fits in cache, and to hurt on the small analogues.
#include "bench_util.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(0.7);
  tilq::bench::print_header("Ablation: 2D column tiling", scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  auto timing = tilq::bench::bench_timing();
  timing.max_iterations = 6;
  using SR = tilq::PlusTimes<double>;

  const std::int64_t col_tile_counts[] = {1, 2, 4, 8, 16, 64};

  std::printf("%-16s |", "graph");
  for (const std::int64_t ct : col_tile_counts) {
    std::printf(" %7s%lld", "ct=", static_cast<long long>(ct));
  }
  std::printf("   (ms per column-tile count)\n");

  for (const std::string& name : tilq::collection_names()) {
    const tilq::GraphMatrix& a = cache.get(name);
    std::printf("%-16s |", name.c_str());
    std::string csv = "CSV,ablation2d," + name;
    for (const std::int64_t ct : col_tile_counts) {
      tilq::Config2d config;
      config.strategy = tilq::MaskStrategy::kHybrid;
      config.coiteration_factor = 1.0;
      config.tiling = tilq::Tiling::kFlopBalanced;
      config.schedule = tilq::Schedule::kDynamic;
      config.num_tiles = std::min<std::int64_t>(1024, a.rows());
      config.threads = threads;
      config.num_col_tiles = ct;
      const tilq::TimingResult result = tilq::bench::measure_with_metrics(
          [&] { (void)tilq::masked_spgemm_2d<SR>(a, a, a, config); }, timing,
          name,
          config.base().describe() + " col_tiles=" + std::to_string(ct));
      std::printf(" %8.2f", result.median_ms);
      csv += "," + std::to_string(result.median_ms);
    }
    std::printf("\n%s\n", csv.c_str());
  }
  return 0;
}
