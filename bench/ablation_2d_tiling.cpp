// Ablation: column-tiled execution vs the paper's 1D row tiling — the
// experiment §V-A defers to future work.
//
// Default mode sweeps the 2D column tile count at a fixed row tiling
// (FLOP-balanced, dynamic, intermediate count) on every graph. Column
// tiling shrinks the per-task B working set at the price of re-reading A
// rows once per column tile; expect it to help only when the B panel no
// longer fits in cache, and to hurt on the small analogues.
//
// --blocked mode is the CI gate for the cache-blocked plan stage: on the
// circuit and web analogues (the kinds with dense-row structure the blocked
// tiles exploit) it plans once per config, measures execute-many on both
// sides, verifies bit-identity against the 1D reference, and requires the
// per-kind geometric-mean speedup to clear --min-speedup (default 1.2).
#include <cmath>
#include <cstring>

#include "bench_util.hpp"

namespace {

using SR = tilq::PlusTimes<double>;

tilq::Config base_config(const tilq::GraphMatrix& a, int threads) {
  tilq::Config config;
  config.strategy = tilq::MaskStrategy::kHybrid;
  config.coiteration_factor = 1.0;
  config.tiling = tilq::Tiling::kFlopBalanced;
  config.schedule = tilq::Schedule::kDynamic;
  config.num_tiles = std::min<std::int64_t>(1024, a.rows());
  config.threads = threads;
  return config;
}

bool bit_identical(const tilq::GraphMatrix& x, const tilq::GraphMatrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() && x.nnz() == y.nnz() &&
         std::equal(x.row_ptr().begin(), x.row_ptr().end(),
                    y.row_ptr().begin()) &&
         std::equal(x.col_idx().begin(), x.col_idx().end(),
                    y.col_idx().begin()) &&
         std::equal(x.values().begin(), x.values().end(), y.values().begin());
}

/// Plan-once / execute-many time for one config (the iterative-workload
/// regime both execution spaces are built for; plan build is amortized).
/// Reports the fastest iteration: scheduler preemption only ever slows a
/// run, so on a shared box the minimum is the noise-robust estimator for
/// a speedup gate.
double time_planned(const tilq::GraphMatrix& a, const tilq::Config& config,
                    const tilq::TimingOptions& timing,
                    const std::string& name) {
  tilq::Executor<SR> exec;
  exec.plan(a, a, a, config);
  const tilq::TimingResult result = tilq::bench::measure_with_metrics(
      [&] { (void)exec.execute(a, a, a); }, timing, name, config.describe());
  return result.min_ms;
}

int run_blocked_gate(double scale, double min_speedup) {
  tilq::bench::print_header("Ablation: blocked tiles vs 1D (gate)", scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  auto timing = tilq::bench::bench_timing();
  timing.max_iterations = 24;
  timing.min_iterations = 5;

  std::printf("%-16s %-8s %9s %9s %9s  %s\n", "graph", "kind", "1d ms",
              "blocked", "speedup", "bit-identical");

  // kind -> (sum of log speedups, count)
  std::map<std::string, std::pair<double, int>> by_kind;
  bool all_identical = true;

  for (const auto& entry : tilq::collection_entries()) {
    if (entry.kind != tilq::GraphKind::kCircuit &&
        entry.kind != tilq::GraphKind::kWeb) {
      continue;
    }
    const tilq::GraphMatrix& a = cache.get(entry.name);
    const tilq::Config one_d = base_config(a, threads);
    tilq::Config blocked = one_d;
    blocked.mode = tilq::Strategy::kBlocked;

    const auto reference = tilq::masked_spgemm<SR>(a, a, a, one_d);
    const auto candidate = tilq::masked_spgemm<SR>(a, a, a, blocked);
    const bool identical = bit_identical(reference, candidate);
    all_identical = all_identical && identical;

    const double ms_1d = time_planned(a, one_d, timing, entry.name);
    const double ms_blocked = time_planned(a, blocked, timing, entry.name);
    const double speedup = ms_blocked > 0.0 ? ms_1d / ms_blocked : 1.0;
    auto& [log_sum, count] = by_kind[tilq::to_string(entry.kind)];
    log_sum += std::log(speedup);
    ++count;

    std::printf("%-16s %-8s %9.2f %9.2f %8.2fx  %s\n", entry.name.c_str(),
                tilq::to_string(entry.kind), ms_1d, ms_blocked, speedup,
                identical ? "yes" : "NO");
    std::printf("CSV,ablation_blocked,%s,%s,%.4f,%.4f,%.4f,%d\n",
                entry.name.c_str(), tilq::to_string(entry.kind), ms_1d,
                ms_blocked, speedup, identical ? 1 : 0);
  }

  bool gate_ok = all_identical;
  std::printf("\n");
  for (const auto& [kind, acc] : by_kind) {
    const double geomean = std::exp(acc.first / std::max(1, acc.second));
    const bool ok = geomean >= min_speedup;
    gate_ok = gate_ok && ok;
    std::printf("%-8s geomean %5.2fx over %d graphs (gate %.2fx): %s\n",
                kind.c_str(), geomean, acc.second, min_speedup,
                ok ? "PASS" : "FAIL");
    std::printf("CSV,ablation_blocked_geomean,%s,%.4f,%d\n", kind.c_str(),
                geomean, ok ? 1 : 0);
  }
  if (!all_identical) {
    std::printf("blocked output diverged from the 1D reference\n");
  }
  std::printf("gate: %s\n", gate_ok ? "PASS" : "FAIL");
  return gate_ok ? 0 : 1;
}

int run_sweep(double scale) {
  tilq::bench::print_header("Ablation: 2D column tiling", scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  auto timing = tilq::bench::bench_timing();
  timing.max_iterations = 6;

  const std::int64_t col_tile_counts[] = {1, 2, 4, 8, 16, 64};

  std::printf("%-16s |", "graph");
  for (const std::int64_t ct : col_tile_counts) {
    std::printf(" %7s%lld", "ct=", static_cast<long long>(ct));
  }
  std::printf("   (ms per column-tile count)\n");

  for (const std::string& name : tilq::collection_names()) {
    const tilq::GraphMatrix& a = cache.get(name);
    std::printf("%-16s |", name.c_str());
    std::string csv = "CSV,ablation2d," + name;
    for (const std::int64_t ct : col_tile_counts) {
      tilq::Config config = base_config(a, threads);
      config.num_col_tiles = ct;
      const tilq::TimingResult result = tilq::bench::measure_with_metrics(
          [&] { (void)tilq::masked_spgemm<SR>(a, a, a, config); }, timing,
          name, config.describe());
      std::printf(" %8.2f", result.median_ms);
      csv += "," + std::to_string(result.median_ms);
    }
    std::printf("\n%s\n", csv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool blocked = false;
  double min_speedup = 1.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--blocked") == 0) {
      blocked = true;
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    }
  }
  const double scale = tilq::bench::bench_scale(0.7);
  return blocked ? run_blocked_gate(scale, min_speedup) : run_sweep(scale);
}
