// Iterated fixed-mask workload: the plan/execute runtime's headline number.
// Repeats the paper's kernel C = A ⊙ (A × A) with unchanging sparsity —
// the k-truss / triangle-census / fixed-graph pattern — and compares
//
//   per-call  one-shot masked_spgemm per iteration (analyze every call)
//   planned   Executor::plan once, execute per iteration (pooled
//             accumulators + reused driver buffers, analyze amortized)
//
// Prints per-matrix medians and speedups, checks the two paths produce
// bit-identical outputs, and asserts the workspace pool performs zero
// accumulator constructions after warm-up. With --min-speedup X the process
// exits non-zero unless every matrix's planned speedup reaches X and the
// correctness/pooling checks hold — CI's plan-reuse smoke contract.
//
// Flags: --min-speedup <x>   gate (default: report only)
//        --iterations <n>    kernel iterations per timed sample (default 8)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using tilq::Config;
using tilq::Csr;
using SR = tilq::PlusTimes<double>;

/// Exact structural + bitwise value equality (csr_equal in the tests allows
/// nothing less; the bench enforces the same contract on real inputs).
bool bit_identical(const Csr<double, std::int64_t>& x,
                   const Csr<double, std::int64_t>& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() && x.nnz() == y.nnz() &&
         std::memcmp(x.row_ptr().data(), y.row_ptr().data(),
                     x.row_ptr().size_bytes()) == 0 &&
         std::memcmp(x.col_idx().data(), y.col_idx().data(),
                     x.col_idx().size_bytes()) == 0 &&
         std::memcmp(x.values().data(), y.values().data(),
                     x.values().size_bytes()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 0.0;
  int iterations = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--min-speedup x] [--iterations n]\n", argv[0]);
      return 2;
    }
  }

  const double scale = tilq::bench::bench_scale(1.0);
  tilq::bench::print_header("iterated_workload", scale);
  tilq::bench::GraphCache cache(scale);
  const auto timing = tilq::bench::bench_timing();

  Config config;
  config.strategy = tilq::MaskStrategy::kHybrid;  // heaviest analyze phase
  config.threads = tilq::bench::bench_threads();

  std::printf("config: %s, %d iterations per sample\n\n", config.describe().c_str(),
              iterations);
  std::printf("%-14s %14s %14s %9s %6s %6s\n", "matrix", "per-call ms/it",
              "planned ms/it", "speedup", "ident", "pool");

  bool gate_ok = true;
  for (const char* name : {"GAP-road", "circuit5M"}) {
    const auto& a = cache.get(name);

    tilq::Executor<SR> exec;
    exec.plan(a, a, a, config);
    const auto planned_out = exec.execute(a, a, a);
    const auto one_shot_out = tilq::masked_spgemm<SR>(a, a, a, config);
    const bool identical = bit_identical(one_shot_out, planned_out);

    const double per_call_ms =
        tilq::bench::measure_with_metrics(
            [&] {
              for (int k = 0; k < iterations; ++k) {
                (void)tilq::masked_spgemm<SR>(a, a, a, config);
              }
            },
            timing, name, "per-call")
            .median_ms /
        iterations;

    const auto warm = exec.pool_stats();
    const auto warm_grows = exec.buffer_grows();
    const double planned_ms =
        tilq::bench::measure_with_metrics(
            [&] {
              for (int k = 0; k < iterations; ++k) {
                (void)exec.execute(a, a, a);
              }
            },
            timing, name, "planned")
            .median_ms /
        iterations;
    const auto after = exec.pool_stats();

    const bool pool_flat = after.constructions == warm.constructions &&
                           exec.buffer_grows() == warm_grows;
    const double speedup = planned_ms > 0.0 ? per_call_ms / planned_ms : 0.0;
    std::printf("%-14s %14.3f %14.3f %8.2fx %6s %6s\n", name, per_call_ms,
                planned_ms, speedup, identical ? "yes" : "NO",
                pool_flat ? "flat" : "GREW");
    std::printf("CSV,iterated,%s,%d,%.6f,%.6f,%.4f,%d,%d\n", name, iterations,
                per_call_ms, planned_ms, speedup, identical ? 1 : 0,
                pool_flat ? 1 : 0);

    if (!identical || !pool_flat ||
        (min_speedup > 0.0 && speedup < min_speedup)) {
      gate_ok = false;
    }
  }

  if (min_speedup > 0.0) {
    std::printf("\ngate: min-speedup %.2fx, pooling flat, bit-identical => %s\n",
                min_speedup, gate_ok ? "PASS" : "FAIL");
    return gate_ok ? 0 : 1;
  }
  return 0;
}
