// Fig 14: execution time vs co-iteration factor κ on the four
// representative matrices (GAP-road, hollywood-2009, com-Orkut, circuit5M),
// with the no-co-iteration algorithm (mask-first) as the dashed baseline.
// Fixed per the paper: 2048 FLOP-balanced tiles (clamped to the scaled
// matrices), DYNAMIC scheduling. Shapes to look for:
//   * GAP-road: κ has minimal effect;
//   * com-Orkut: the dense accumulator improves markedly around κ ≈ 1;
//   * circuit5M: without co-iteration the kernel is catastrophically slow
//     (the paper's run timed out); with κ >= 0.1 it collapses to ~interactive
//     time. The baseline is measured once rather than to a time budget so
//     this bench still terminates quickly.
#include "bench_util.hpp"

int main() {
  const double scale = tilq::bench::bench_scale(1.0);
  tilq::bench::print_header("Fig 14: time vs co-iteration factor", scale);
  tilq::bench::GraphCache cache(scale);
  const int threads = tilq::bench::bench_threads();
  const auto timing = tilq::bench::bench_timing();

  const double kappas[] = {0.001, 0.003, 0.01, 0.03, 0.1, 0.3,
                           1.0,   3.0,   10.0, 100.0, 1000.0};

  for (const char* name :
       {"GAP-road", "hollywood-2009", "com-Orkut", "circuit5M"}) {
    const tilq::GraphMatrix& a = cache.get(name);
    std::printf("\n-- %s (n=%lld, nnz=%lld) --\n", name,
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.nnz()));

    tilq::Config base;
    base.tiling = tilq::Tiling::kFlopBalanced;
    base.schedule = tilq::Schedule::kDynamic;
    base.num_tiles = std::min<std::int64_t>(2048, a.rows());
    base.marker_width = tilq::MarkerWidth::k32;
    base.threads = threads;

    // Dashed baseline: the non-co-iterating algorithm, measured once (it is
    // the slow case this figure exists to show).
    std::printf("%-8s %12s %12s\n", "kappa", "dense_ms", "hash_ms");
    double baseline[2];
    int idx = 0;
    for (const tilq::AccumulatorKind acc :
         {tilq::AccumulatorKind::kDense, tilq::AccumulatorKind::kHash}) {
      tilq::Config config = base;
      config.strategy = tilq::MaskStrategy::kMaskFirst;
      config.accumulator = acc;
      const tilq::MetricsSnapshot before = tilq::metrics_snapshot();
      tilq::WallTimer timer;
      (void)tilq::masked_spgemm<tilq::PlusTimes<double>>(a, a, a, config);
      baseline[idx] = timer.milliseconds();
      tilq::bench::emit_single_run_metrics(before, name, config.describe(),
                                           baseline[idx]);
      ++idx;
    }
    std::printf("%-8s %12.2f %12.2f   (no co-iteration, single run)\n", "--",
                baseline[0], baseline[1]);
    std::printf("CSV,fig14,%s,baseline,%.3f,%.3f\n", name, baseline[0],
                baseline[1]);

    for (const double kappa : kappas) {
      double ms[2];
      idx = 0;
      for (const tilq::AccumulatorKind acc :
           {tilq::AccumulatorKind::kDense, tilq::AccumulatorKind::kHash}) {
        tilq::Config config = base;
        config.strategy = tilq::MaskStrategy::kHybrid;
        config.coiteration_factor = kappa;
        config.accumulator = acc;
        ms[idx++] = tilq::bench::time_kernel(a, config, timing, name);
      }
      std::printf("%-8g %12.2f %12.2f\n", kappa, ms[0], ms[1]);
      std::printf("CSV,fig14,%s,%g,%.3f,%.3f\n", name, kappa, ms[0], ms[1]);
    }
  }
  return 0;
}
