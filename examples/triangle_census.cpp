// Triangle census across the synthetic collection — the paper's motivating
// workload (§I) end to end. For every graph we count triangles three ways
// (the Burkhardt, Cohen, and Sandia formulations must agree) and compare
// the tuned kernel against the SS:GB-like and GrB-like baseline policies.
//
// Usage: triangle_census [scale]     (default scale 0.25)
#include <cstdio>
#include <cstdlib>

#include "tilq/tilq.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

  std::printf("%-16s %10s %10s | %10s %10s %10s | %8s %8s\n", "graph", "n",
              "nnz", "burkhardt", "cohen", "sandia", "ssgb_ms", "grb_ms");
  for (const std::string& name : tilq::collection_names()) {
    const tilq::GraphMatrix raw = tilq::make_collection_graph(name, scale);
    // Triangle counting needs an undirected simple graph.
    const tilq::GraphMatrix graph = tilq::symmetrize(raw);

    tilq::Config config;  // tuned defaults: hybrid + hash + balanced/dynamic
    const auto burkhardt =
        tilq::count_triangles(graph, tilq::TriangleMethod::kBurkhardt, config);
    const auto cohen =
        tilq::count_triangles(graph, tilq::TriangleMethod::kCohen, config);
    const auto sandia =
        tilq::count_triangles(graph, tilq::TriangleMethod::kSandia, config);
    if (burkhardt != cohen || cohen != sandia) {
      std::printf("%-16s METHOD DISAGREEMENT (%lld / %lld / %lld)\n",
                  name.c_str(), static_cast<long long>(burkhardt),
                  static_cast<long long>(cohen), static_cast<long long>(sandia));
      return 1;
    }

    // Baseline policies on the paper's kernel shape C = A ⊙ (A x A).
    using SR = tilq::PlusPair<std::int64_t>;
    const auto a = tilq::convert_values<std::int64_t>(graph);
    tilq::WallTimer ssgb_timer;
    (void)tilq::baselines::ssgb_like<SR>(a, a, a);
    const double ssgb_ms = ssgb_timer.milliseconds();
    tilq::WallTimer grb_timer;
    (void)tilq::baselines::grb_like<SR>(a, a, a);
    const double grb_ms = grb_timer.milliseconds();

    std::printf("%-16s %10lld %10lld | %10lld %10lld %10lld | %8.1f %8.1f\n",
                name.c_str(), static_cast<long long>(graph.rows()),
                static_cast<long long>(graph.nnz()),
                static_cast<long long>(burkhardt), static_cast<long long>(cohen),
                static_cast<long long>(sandia), ssgb_ms, grb_ms);
  }
  return 0;
}
