// Direction-optimizing BFS across graph kinds. Road networks (huge
// diameter, tiny frontiers) stay in push mode; social networks (tiny
// diameter, enormous middle frontiers) trigger the pull switch — the
// vertex-level push-pull analogue of the paper's co-iteration hybrid.
//
// Usage: bfs_traversal [scale]    (default 0.25)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "tilq/tilq.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

  std::printf("%-16s %8s %10s %9s %6s %6s %6s\n", "graph", "n", "reached",
              "depth", "push", "pull", "ms");
  for (const char* name : {"GAP-road", "europe_osm", "com-Orkut",
                           "hollywood-2009", "as-Skitter"}) {
    const tilq::GraphMatrix graph =
        tilq::symmetrize(tilq::make_collection_graph(name, scale));
    // Road analogues sit near the percolation threshold and fragment;
    // start inside the giant component so the traversal is meaningful.
    const std::int64_t source = tilq::largest_component_member(graph);
    tilq::WallTimer timer;
    const tilq::BfsResult result = tilq::bfs(graph, source);
    const double ms = timer.milliseconds();
    const auto depth = *std::max_element(result.level.begin(), result.level.end());
    std::printf("%-16s %8lld %10lld %9lld %6d %6d %6.1f\n", name,
                static_cast<long long>(graph.rows()),
                static_cast<long long>(result.reached),
                static_cast<long long>(depth), result.push_steps,
                result.pull_steps, ms);
  }
  return 0;
}
