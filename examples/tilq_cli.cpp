// tilq_cli — command-line driver exposing every Config dimension, for
// ad-hoc experiments without writing code:
//
//   tilq_cli --graph com-Orkut --scale 0.5 --strategy hybrid --kappa 1
//            --acc hash --marker 32 --tiling balanced --sched dynamic
//            --tiles 1024        (one line; wrapped here for readability)
//   tilq_cli --mtx my_matrix.mtx --predict      # model-chosen config
//   tilq_cli --graph circuit5M --tune           # staged Fig-12 tuning
//   tilq_cli --graph GAP-road --col-tiles 8     # 2D tiling
//
// Run with --help for the full flag list. With no arguments it runs a
// small self-demo.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "tilq/tilq.hpp"

namespace {

struct CliOptions {
  std::string graph = "GAP-road";
  std::string mtx_path;
  double scale = 0.25;
  tilq::Config config;
  bool predict = false;
  bool tune = false;
  bool profile = false;
  bool engine = false;
  bool autotune = false;
  bool watch = false;
  int telemetry_port = -1;
  double serve_ms = 0.0;
  int jobs = 8;
  int repeats = 5;
  tilq::JobPriority priority = tilq::JobPriority::kAuto;
  double deadline_ms = 0.0;
  int retries = 1;
  int mem_budget_mb = 0;
};

void print_usage() {
  std::puts(
      "tilq_cli: run the masked-SpGEMM kernel C = A .* (A x A)\n"
      "\n"
      "input:\n"
      "  --graph NAME     synthetic collection analogue (default GAP-road)\n"
      "  --mtx FILE       load a Matrix Market file instead\n"
      "  --scale S        collection scale factor (default 0.25)\n"
      "configuration (the paper's three dimensions):\n"
      "  --tiling uniform|balanced      (default balanced)\n"
      "  --sched static|dynamic         (default dynamic)\n"
      "  --tiles N                      (default 2 x threads)\n"
      "  --strategy vanilla|mask-first|co-iterate|hybrid  (default mask-first)\n"
      "  --kappa K        co-iteration factor for hybrid (default 1)\n"
      "  --acc dense|hash|bitmap        (default hash)\n"
      "  --marker 8|16|32|64            (default 32)\n"
      "  --reset marker|explicit        (default marker)\n"
      "  --col-tiles N    2D column tiling (default 1 = 1D)\n"
      "  --mode 1d|2d|blocked           execution space (default: inferred)\n"
      "  --block-cols N   blocked mode: columns per cache block (default 4096)\n"
      "  --threads N\n"
      "modes:\n"
      "  --predict        use the model-based config predictor\n"
      "  --tune           run the staged Fig-12 tuner first\n"
      "  --profile        enable metrics and print a hardware/imbalance summary\n"
      "  --engine         serve the repeated queries through the batch engine\n"
      "  --autotune       engine mode: learn the config online per repeated\n"
      "                   structure (implies --engine, docs/TUNING.md)\n"
      "  --jobs N         engine mode: concurrent in-flight queries (default 8)\n"
      "  --priority P     engine mode: high|normal|background lane request\n"
      "                   (default: auto — the cost model picks, docs/SERVING.md)\n"
      "  --deadline-ms N  engine mode: per-job deadline; late jobs are\n"
      "                   cancelled with DeadlineExpiredError (default 0 = none)\n"
      "  --retries N      engine mode: attempts per job; failed attempts\n"
      "                   replan or degrade and retry (default 1 = off,\n"
      "                   docs/ROBUSTNESS.md)\n"
      "  --mem-budget-mb M  engine mode: memory-governor budget; over it the\n"
      "                   engine browns out to reduced-footprint plans\n"
      "                   (default 0 = unlimited)\n"
      "  --repeats N      timing repetitions (default 5)\n"
      "telemetry (docs/TELEMETRY.md; implies --engine):\n"
      "  --watch             print one live sampler line per telemetry tick\n"
      "  --telemetry-port P  serve Prometheus text on 127.0.0.1:P (0 = any)\n"
      "  --serve-ms N        keep the engine and exporter alive N ms after\n"
      "                      the query stream finishes (for scraping)\n");
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      print_usage();
      std::exit(0);
    } else if (flag == "--graph") {
      options.graph = next();
    } else if (flag == "--mtx") {
      options.mtx_path = next();
    } else if (flag == "--scale") {
      options.scale = std::atof(next());
    } else if (flag == "--tiling") {
      const std::string v = next();
      options.config.tiling =
          v == "uniform" ? tilq::Tiling::kUniform : tilq::Tiling::kFlopBalanced;
    } else if (flag == "--sched") {
      const std::string v = next();
      options.config.schedule =
          v == "static" ? tilq::Schedule::kStatic : tilq::Schedule::kDynamic;
    } else if (flag == "--tiles") {
      options.config.num_tiles = std::atoll(next());
    } else if (flag == "--strategy") {
      const std::string v = next();
      if (v == "vanilla") {
        options.config.strategy = tilq::MaskStrategy::kVanilla;
      } else if (v == "co-iterate") {
        options.config.strategy = tilq::MaskStrategy::kCoIterate;
      } else if (v == "hybrid") {
        options.config.strategy = tilq::MaskStrategy::kHybrid;
      } else {
        options.config.strategy = tilq::MaskStrategy::kMaskFirst;
      }
    } else if (flag == "--kappa") {
      options.config.coiteration_factor = std::atof(next());
    } else if (flag == "--acc") {
      const std::string v = next();
      options.config.accumulator = v == "dense"  ? tilq::AccumulatorKind::kDense
                                   : v == "bitmap" ? tilq::AccumulatorKind::kBitmap
                                                   : tilq::AccumulatorKind::kHash;
    } else if (flag == "--marker") {
      switch (std::atoi(next())) {
        case 8:
          options.config.marker_width = tilq::MarkerWidth::k8;
          break;
        case 16:
          options.config.marker_width = tilq::MarkerWidth::k16;
          break;
        case 64:
          options.config.marker_width = tilq::MarkerWidth::k64;
          break;
        default:
          options.config.marker_width = tilq::MarkerWidth::k32;
          break;
      }
    } else if (flag == "--reset") {
      const std::string v = next();
      options.config.reset = v == "explicit" ? tilq::ResetPolicy::kExplicit
                                             : tilq::ResetPolicy::kMarker;
    } else if (flag == "--col-tiles") {
      options.config.num_col_tiles = std::atoll(next());
    } else if (flag == "--mode") {
      const std::string v = next();
      options.config.mode = v == "blocked" ? tilq::Strategy::kBlocked
                            : v == "2d"    ? tilq::Strategy::k2D
                                           : tilq::Strategy::k1D;
    } else if (flag == "--block-cols") {
      options.config.block_cols = std::atoll(next());
    } else if (flag == "--threads") {
      options.config.threads = std::atoi(next());
    } else if (flag == "--predict") {
      options.predict = true;
    } else if (flag == "--tune") {
      options.tune = true;
    } else if (flag == "--profile") {
      options.profile = true;
    } else if (flag == "--engine") {
      options.engine = true;
    } else if (flag == "--autotune") {
      options.autotune = true;
      options.engine = true;
    } else if (flag == "--watch") {
      options.watch = true;
      options.engine = true;
    } else if (flag == "--telemetry-port") {
      options.telemetry_port = std::atoi(next());
      options.engine = true;
    } else if (flag == "--serve-ms") {
      options.serve_ms = std::atof(next());
      options.engine = true;
    } else if (flag == "--jobs") {
      options.jobs = std::atoi(next());
    } else if (flag == "--priority") {
      const std::string v = next();
      if (v == "high") {
        options.priority = tilq::JobPriority::kHigh;
      } else if (v == "normal") {
        options.priority = tilq::JobPriority::kNormal;
      } else if (v == "background") {
        options.priority = tilq::JobPriority::kBackground;
      } else {
        std::fprintf(stderr,
                     "bad --priority %s (want high|normal|background)\n",
                     v.c_str());
        return std::nullopt;
      }
    } else if (flag == "--deadline-ms") {
      options.deadline_ms = std::atof(next());
    } else if (flag == "--retries") {
      options.retries = std::max(1, std::atoi(next()));
    } else if (flag == "--mem-budget-mb") {
      options.mem_budget_mb = std::max(0, std::atoi(next()));
    } else if (flag == "--repeats") {
      options.repeats = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", flag.c_str());
      return std::nullopt;
    }
  }
  return options;
}

/// One-screen --profile summary: where the cycles went (hardware counters
/// when the machine grants them) and how evenly the team shared the work.
void print_profile(const tilq::MetricsSnapshot& delta,
                   const tilq::ExecutionStats& exec) {
  std::printf("\nprofile:\n");
  const tilq::HwCounters& hw = delta.hw_total;
  const tilq::MetricCounters& c = delta.total;
  if (!tilq::kMetricsCompiled) {
    std::printf("  metrics compiled out (build with -DTILQ_METRICS=ON)\n");
  } else if (hw.all_zero()) {
    std::printf(
        "  hardware: counters unavailable on this machine (records carry "
        "\"hw\":null);\n"
        "            needs perf_event_open — check "
        "/proc/sys/kernel/perf_event_paranoid\n");
  } else {
    const auto per = [](std::uint64_t num, std::uint64_t den) {
      return den == 0 ? 0.0
                      : static_cast<double>(num) / static_cast<double>(den);
    };
    std::printf("  cycles/flop:   %8.2f   (%llu cycles, %llu flops)\n",
                per(hw.cycles, c.flops),
                static_cast<unsigned long long>(hw.cycles),
                static_cast<unsigned long long>(c.flops));
    std::printf("  ipc:           %8.2f\n", per(hw.instructions, hw.cycles));
    std::printf("  llc miss rate: %7.1f%%   (%llu misses / %llu loads)\n",
                100.0 * per(hw.llc_misses, hw.llc_loads),
                static_cast<unsigned long long>(hw.llc_misses),
                static_cast<unsigned long long>(hw.llc_loads));
    std::printf("  branch misses: %8.2f   per 1k instructions\n",
                1000.0 * per(hw.branch_misses, hw.instructions));
    std::printf("  stalled:       %7.1f%%   of cycles\n",
                100.0 * per(hw.stalled_cycles, hw.cycles));
  }
  std::printf(
      "  imbalance:     %8.2f   max/mean busy over %zu threads (cv %.2f)\n",
      exec.imbalance_ratio, exec.thread_work.size(), exec.busy_cv);
  double max_busy = 0.0;
  for (const tilq::ThreadWork& t : exec.thread_work) {
    max_busy = std::max(max_busy, t.busy_ms);
  }
  for (const tilq::ThreadWork& t : exec.thread_work) {
    const int bar =
        max_busy > 0.0 ? static_cast<int>(32.0 * t.busy_ms / max_busy) : 0;
    std::printf("    thread %2d: %8.2f ms  %5lld tiles %8lld rows  |%.*s\n",
                t.thread, t.busy_ms, static_cast<long long>(t.tiles),
                static_cast<long long>(t.rows), bar,
                "################################");
  }
}

/// --engine mode: serve repeats x jobs identical queries through the batch
/// engine with up to `jobs` concurrently in flight (a sliding submission
/// window), then cross-check the last result against the single-call path.
int run_engine(const tilq::GraphMatrix& a, const CliOptions& options,
               const std::string& config_label) {
  using SR = tilq::PlusTimes<double>;
  const int jobs = std::max(1, options.jobs);
  const int total = std::max(1, options.repeats) * jobs;
  const tilq::Config& config = options.config;

  tilq::EngineOptions engine_options;
  engine_options.max_in_flight = static_cast<std::size_t>(jobs);
  engine_options.retry.max_attempts = options.retries;
  engine_options.memory_budget_bytes =
      static_cast<std::uint64_t>(options.mem_budget_mb) << 20;
  engine_options.autotune.enabled = options.autotune;
  if (options.watch || options.telemetry_port >= 0 || options.serve_ms > 0.0) {
    engine_options.telemetry.enabled = true;
  }
  if (options.telemetry_port >= 0) {
    engine_options.telemetry.port = options.telemetry_port;
  }
  tilq::Engine<SR> engine(engine_options);
  tilq::SubmitOptions submit_options;
  submit_options.priority = options.priority;
  submit_options.deadline_ms = options.deadline_ms;
  std::printf("engine: %d workers, %d jobs in flight, %d queries\n",
              engine.threads(), jobs, total);
  if (options.deadline_ms > 0.0) {
    std::printf("engine: per-job deadline %.2f ms\n", options.deadline_ms);
  }
  if (options.retries > 1) {
    std::printf("engine: up to %d attempts per job\n", options.retries);
  }
  if (options.mem_budget_mb > 0) {
    std::printf("engine: memory budget %d MiB\n", options.mem_budget_mb);
  }
  if (engine.autotune() != nullptr) {
    std::printf("engine: online tuning on, epsilon %.2f (docs/TUNING.md)\n",
                engine.autotune()->options().epsilon);
  }
  if (tilq::TelemetryHub* hub = engine.telemetry()) {
    if (hub->port() >= 0) {
      std::printf("telemetry: serving /metrics on http://127.0.0.1:%d\n",
                  hub->port());
    }
  }

  // --watch: a background printer that tails the sampler ring, one line per
  // new sample. The hub keeps ticking regardless; this only reads `latest()`.
  std::atomic<bool> watch_stop{false};
  std::thread watcher;
  if (options.watch && engine.telemetry() != nullptr) {
    watcher = std::thread([&] {
      tilq::TelemetryHub* hub = engine.telemetry();
      std::uint64_t seen = 0;
      while (!watch_stop.load(std::memory_order_relaxed)) {
        const std::uint64_t count = hub->sample_count();
        if (count > seen) {
          seen = count;
          if (const auto sample = hub->latest()) {
            const double denom = static_cast<double>(sample->plan_builds +
                                                     sample->plan_hits);
            std::printf(
                "watch: t=%8.0fms in-flight=%2llu done=%llu p50=%.2fms "
                "p99=%.2fms hit-rate=%.2f stuck=%llu tuned=%llu/%llu\n",
                sample->uptime_ms,
                static_cast<unsigned long long>(sample->in_flight),
                static_cast<unsigned long long>(sample->jobs_completed),
                sample->window.p50_ms, sample->window.p99_ms,
                denom > 0.0 ? static_cast<double>(sample->plan_hits) / denom
                            : 0.0,
                static_cast<unsigned long long>(sample->jobs_stuck),
                static_cast<unsigned long long>(sample->autotune_converged),
                static_cast<unsigned long long>(
                    sample->autotune_fingerprints));
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max(1, static_cast<int>(hub->options().sample_interval_ms))));
      }
    });
  }

  const tilq::MetricsSnapshot metrics_before = tilq::metrics_snapshot();
  std::vector<tilq::Engine<SR>::JobHandle> window;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(total));
  int deadline_misses = 0;
  // A job past its --deadline-ms is an expected outcome here, not a CLI
  // failure: count it and keep serving the rest of the stream.
  const auto drain = [&](tilq::Engine<SR>::JobHandle& handle) {
    try {
      handle.wait();
      latencies_ms.push_back(handle.stats().total_ms);
    } catch (const tilq::DeadlineExpiredError&) {
      ++deadline_misses;
    }
  };
  tilq::WallTimer wall;
  for (int i = 0; i < total; ++i) {
    if (window.size() >= static_cast<std::size_t>(jobs)) {
      drain(window.front());
      window.erase(window.begin());
    }
    window.push_back(engine.submit(a, a, a, config, submit_options));
  }
  for (tilq::Engine<SR>::JobHandle& handle : window) {
    drain(handle);
  }
  const double elapsed = wall.seconds();

  std::printf("\nthroughput: %.1f queries/sec (%d queries in %.2f s)\n",
              static_cast<double>(total) / elapsed, total, elapsed);
  if (latencies_ms.empty()) {
    std::printf("latency: no jobs finished (%d deadline misses)\n",
                deadline_misses);
  } else {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const auto quantile = [&](double q) {
      const auto index = static_cast<std::size_t>(
          q * static_cast<double>(latencies_ms.size() - 1));
      return latencies_ms[index];
    };
    std::printf("latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms\n",
                quantile(0.50), quantile(0.95), quantile(0.99),
                latencies_ms.back());
  }
  if (deadline_misses > 0) {
    std::printf("deadline misses: %d of %d jobs\n", deadline_misses, total);
  }
  // --serve-ms: keep the engine (and its /metrics exporter) alive so an
  // external scraper can observe the post-stream counters (CI does this).
  if (options.serve_ms > 0.0) {
    std::printf("telemetry: holding engine alive for %.0f ms\n",
                options.serve_ms);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<long long>(options.serve_ms)));
  }
  if (watcher.joinable()) {
    watch_stop.store(true, std::memory_order_relaxed);
    watcher.join();
  }

  const tilq::EngineStats engine_stats = engine.stats();
  std::printf("engine: %s\n", tilq::describe(engine_stats).c_str());
  if (options.profile) {
    // Engine-mode --profile: the serving percentile block, split into the
    // queue (submit -> first task) and run (first task -> done) phases so
    // a saturated pool reads differently from a slow kernel.
    const auto row = [](const char* label, const tilq::LatencySummary& s) {
      std::printf("  %-7s p50 %8.2f ms   p95 %8.2f ms   p99 %8.2f ms   "
                  "max %8.2f ms\n",
                  label, s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms);
    };
    std::printf("\nprofile (engine, %llu jobs):\n",
                static_cast<unsigned long long>(engine_stats.latency.count));
    row("total", engine_stats.latency);
    row("queue", engine_stats.queue_latency);
    row("run", engine_stats.run_latency);
    // Serving-health footer: cache effectiveness, admission outcomes and
    // how long this engine has been up (docs/TELEMETRY.md).
    const double plan_denom = static_cast<double>(engine_stats.plan_builds +
                                                  engine_stats.plan_hits);
    std::printf("  plan-cache hit rate: %.2f (%llu hits / %llu builds)\n",
                plan_denom > 0.0
                    ? static_cast<double>(engine_stats.plan_hits) / plan_denom
                    : 0.0,
                static_cast<unsigned long long>(engine_stats.plan_hits),
                static_cast<unsigned long long>(engine_stats.plan_builds));
    std::printf("  shed %llu, deferred %llu, deadline misses %llu\n",
                static_cast<unsigned long long>(engine_stats.jobs_shed),
                static_cast<unsigned long long>(engine_stats.jobs_deferred),
                static_cast<unsigned long long>(engine_stats.deadline_misses));
    // Resilience footer (docs/ROBUSTNESS.md): health verdict, the retry
    // layer's work, and the memory governor's high-water mark.
    std::printf("  health %s, retries %llu (%llu jobs), brownouts %llu, "
                "mem high-water %.1f MiB\n",
                to_string(engine_stats.health),
                static_cast<unsigned long long>(engine_stats.retries),
                static_cast<unsigned long long>(engine_stats.jobs_retried),
                static_cast<unsigned long long>(engine_stats.brownouts),
                static_cast<double>(engine_stats.memory_high_water_bytes) /
                    (1024.0 * 1024.0));
    if (engine_stats.autotune_fingerprints > 0) {
      // Online-tuning footer (docs/TUNING.md): how much of the stream has
      // converged onto a learned arm, and what the learning cost was.
      std::printf("  autotune: %llu/%llu fingerprints converged, "
                  "%llu explorations, %llu arm switches\n",
                  static_cast<unsigned long long>(
                      engine_stats.autotune_converged),
                  static_cast<unsigned long long>(
                      engine_stats.autotune_fingerprints),
                  static_cast<unsigned long long>(
                      engine_stats.autotune_explorations),
                  static_cast<unsigned long long>(
                      engine_stats.autotune_arm_switches));
    }
    std::printf("  uptime: %.0f ms", engine_stats.uptime_ms);
    if (engine_stats.telemetry_samples > 0) {
      std::printf("   (%llu telemetry samples)",
                  static_cast<unsigned long long>(
                      engine_stats.telemetry_samples));
    }
    std::printf("\n");
  }

  // Bit-identity spot check: engine output vs the single-call path.
  const auto oracle = tilq::masked_spgemm<SR>(a, a, a, config);
  const auto served = engine.submit(a, a, a, config).get();
  const bool identical = oracle.rows() == served.rows() &&
                         oracle.nnz() == served.nnz() &&
                         std::equal(oracle.values().begin(),
                                    oracle.values().end(),
                                    served.values().begin());
  std::printf("bit-identical vs single-call path: %s\n",
              identical ? "yes" : "NO");

  if (tilq::metrics_enabled()) {
    tilq::MetricsRecord record;
    record.source = "tilq_cli-engine";
    record.matrix = !options.mtx_path.empty() ? options.mtx_path : options.graph;
    record.config = config_label + " jobs=" + std::to_string(jobs);
    record.runs = total;
    record.median_ms = latencies_ms.empty()
                           ? 0.0
                           : latencies_ms[latencies_ms.size() / 2];
    record.engine_latency = tilq::engine_latency_record(engine_stats);
    tilq::emit_metrics_record(
        record, tilq::metrics_delta(metrics_before, tilq::metrics_snapshot()));
  }
  if (!tilq::trace_path().empty() && tilq::trace_flush()) {
    std::printf("trace: wrote %zu events to %s\n", tilq::trace_event_count(),
                tilq::trace_path().c_str());
  }
  return identical ? 0 : 1;
}

int run(CliOptions options) {
  if (options.profile) {
    // --profile implies counting; the summary needs the flop and hardware
    // deltas of the measured region.
    tilq::set_metrics_enabled(true);
  }

  // Input.
  tilq::GraphMatrix a;
  if (!options.mtx_path.empty()) {
    a = tilq::read_matrix_market_file(options.mtx_path);
    std::printf("loaded %s\n", options.mtx_path.c_str());
  } else {
    a = tilq::make_collection_graph(options.graph, options.scale);
    std::printf("generated %s analogue at scale %g\n", options.graph.c_str(),
                options.scale);
  }
  const auto stats = tilq::compute_stats(a);
  std::printf("matrix: %lld x %lld, nnz=%lld, max row=%lld\n",
              static_cast<long long>(stats.rows),
              static_cast<long long>(stats.cols),
              static_cast<long long>(stats.nnz),
              static_cast<long long>(stats.max_row_nnz));
  std::printf("environment: %s\n\n", tilq::environment_summary().c_str());

  using SR = tilq::PlusTimes<double>;

  // Mode resolution.
  if (options.predict) {
    options.config = tilq::predict_config(a, a, a, options.config.threads);
    std::printf("predicted config: %s\n", options.config.describe().c_str());
  }
  if (options.tune) {
    tilq::TunerOptions tuner_options;
    tuner_options.threads = options.config.threads;
    const tilq::TunerReport report = tilq::tune<SR>(a, a, a, tuner_options);
    options.config = report.best;
    std::printf("tuned config (%zu trials): %s\n",
                report.stage_tiling.size() + report.stage_coiteration.size() +
                    report.stage_accumulator.size(),
                options.config.describe().c_str());
  }

  // Execution + timing. The selected configuration goes into the output
  // header, before the (possibly long) measurement, so partial output is
  // already attributable to a config.
  const std::string config_label = options.config.describe();
  std::printf("config: %s\n", config_label.c_str());

  tilq::TimingOptions timing;
  timing.max_iterations = options.repeats;
  timing.min_iterations = std::min(options.repeats, 2);
  timing.budget_seconds = 60.0;

  if (options.engine) {
    return run_engine(a, options, config_label);
  }

  tilq::ExecutionStats exec;
  tilq::TimingResult result;
  const tilq::MetricsSnapshot metrics_before = tilq::metrics_snapshot();
  result = tilq::measure(
      [&] { (void)tilq::masked_spgemm<SR>(a, a, a, options.config, exec); },
      timing);

  std::printf("\ntime: median %.2f ms (min %.2f, mean %.2f, max %.2f over %lld runs)\n",
              result.median_ms, result.min_ms, result.mean_ms, result.max_ms,
              static_cast<long long>(result.iterations));
  std::printf("phases: analyze %.2f ms, compute %.2f ms, compact %.2f ms\n",
              exec.analyze_ms, exec.compute_ms, exec.compact_ms);
  std::printf("output: nnz=%lld, tiles=%lld, accumulator full resets=%llu\n",
              static_cast<long long>(exec.output_nnz),
              static_cast<long long>(exec.tiles),
              static_cast<unsigned long long>(exec.accumulator_full_resets));

  const tilq::MetricsSnapshot metrics_region =
      tilq::metrics_delta(metrics_before, tilq::metrics_snapshot());
  if (options.profile) {
    print_profile(metrics_region, exec);
  }

  // Observability sinks (docs/METRICS.md): one JSON-lines record covering
  // every run of the measurement, and the Chrome trace when requested.
  if (tilq::metrics_enabled()) {
    tilq::MetricsRecord record;
    record.source = "tilq_cli";
    record.matrix = !options.mtx_path.empty() ? options.mtx_path : options.graph;
    record.config = config_label;
    record.runs = result.iterations + (timing.warmup ? 1 : 0);
    record.median_ms = result.median_ms;
    tilq::emit_metrics_record(record, metrics_region);
  }
  if (!tilq::trace_path().empty() && tilq::trace_flush()) {
    std::printf("trace: wrote %zu events to %s\n", tilq::trace_event_count(),
                tilq::trace_path().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) {
    return 2;
  }
  // Every library failure is a typed tilq::Error (docs/ROBUSTNESS.md) and
  // propagates here even from inside the OpenMP regions; report it as a
  // diagnostic instead of std::terminate.
  try {
    return run(*parsed);
  } catch (const tilq::Error& e) {
    std::fprintf(stderr, "tilq_cli: %s error: %s\n", tilq::to_string(e.kind()),
                 e.message());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tilq_cli: %s\n", e.what());
    return 1;
  }
}
