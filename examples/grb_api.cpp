// The GraphBLAS-shaped API from the paper's §II-B, end to end: the masked
// matrix product through grb::mxm with descriptors, then triangle counting
// exactly as the GraphBLAS recipe prescribes (C<M> = A*A with PLUS_PAIR,
// reduce, divide by 6).
#include <cstdio>

#include "tilq/tilq.hpp"

int main() {
  using tilq::grb::Descriptor;
  using tilq::grb::Matrix;
  using tilq::grb::SemiringOp;

  const Matrix a =
      tilq::symmetrize(tilq::make_collection_graph("com-LiveJournal", 0.15));
  std::printf("A: %lld x %lld, nnz = %lld\n", static_cast<long long>(a.rows()),
              static_cast<long long>(a.cols()),
              static_cast<long long>(a.nnz()));

  // GrB_mxm(C, M=A, PLUS_PAIR, A, A, desc): the triangle kernel.
  Descriptor desc;
  desc.mask_structural = true;               // GrB_STRUCTURE
  desc.config.strategy = tilq::MaskStrategy::kHybrid;
  const Matrix c = tilq::grb::mxm(&a, SemiringOp::kPlusPair, a, a, desc);
  const double triangles = tilq::grb::reduce(SemiringOp::kPlusTimes, c) / 6.0;
  std::printf("triangles (GrB recipe): %.0f\n", triangles);

  // Same, sanity-checked against the native algorithm.
  std::printf("triangles (native):     %lld\n",
              static_cast<long long>(tilq::count_triangles(a)));

  // A descriptor tour: complemented mask = the non-edges of A reached by
  // 2-hop paths (the "open wedge" count).
  Descriptor complement = desc;
  complement.mask_complement = true;
  const Matrix wedges =
      tilq::grb::mxm(&a, SemiringOp::kPlusPair, a, a, complement);
  std::printf("open-wedge positions (complement mask): %lld entries\n",
              static_cast<long long>(wedges.nnz()));

  // Element-wise algebra: A .* A over min-plus keeps the pattern with
  // doubled values (mul of min-plus is +).
  const Matrix doubled = tilq::grb::ewise_mult(SemiringOp::kMinPlus, a, a);
  std::printf("ewise min-plus self-product: nnz = %lld (pattern preserved: %s)\n",
              static_cast<long long>(doubled.nnz()),
              tilq::same_pattern(a, doubled) ? "yes" : "no");
  return 0;
}
