// k-truss decomposition of a social-network analogue — the second workload
// the paper's introduction motivates. Prints the truss hierarchy: how many
// edges survive each k, and how many masked-SpGEMM rounds the peeling took.
//
// Usage: ktruss_cores [graph-name] [scale]   (default com-LiveJournal 0.15)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tilq/tilq.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "com-LiveJournal";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.15;

  const tilq::GraphMatrix graph =
      tilq::symmetrize(tilq::make_collection_graph(name, scale));
  std::printf("graph %s: n=%lld edges=%lld\n", name.c_str(),
              static_cast<long long>(graph.rows()),
              static_cast<long long>(graph.nnz() / 2));

  tilq::Config config;
  std::printf("%4s %12s %12s %10s\n", "k", "edges", "removed", "rounds");
  std::int64_t previous_edges = graph.nnz() / 2;
  tilq::Csr<double, std::int64_t> current = graph;
  for (int k = 3;; ++k) {
    // Peel from the previous truss: the k-truss is inside the (k-1)-truss.
    const tilq::KtrussResult result = tilq::ktruss(current, k, config);
    std::printf("%4d %12lld %12lld %10d\n", k,
                static_cast<long long>(result.edges),
                static_cast<long long>(previous_edges - result.edges),
                result.iterations);
    if (result.edges == 0) {
      std::printf("max truss: %d\n", k - 1);
      break;
    }
    previous_edges = result.edges;
    current = result.truss;
  }
  return 0;
}
