// The Fig-12 staged tuning flow, narrated. Runs the three stages (tiling &
// scheduling -> co-iteration factor -> accumulator state) on one graph and
// prints every trial, showing how the best configuration emerges.
//
// Usage: autotune_report [graph-name] [scale]   (default circuit5M 0.5)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tilq/tilq.hpp"

namespace {

void print_stage(const char* title, const std::vector<tilq::TunerTrial>& trials) {
  std::printf("\n--- %s (%zu trials) ---\n", title, trials.size());
  for (const tilq::TunerTrial& trial : trials) {
    std::printf("  %8.2f ms  %s\n", trial.ms, trial.config.describe().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "circuit5M";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  const tilq::GraphMatrix graph = tilq::make_collection_graph(name, scale);
  std::printf("tuning masked-SpGEMM for %s (n=%lld, nnz=%lld)\n", name.c_str(),
              static_cast<long long>(graph.rows()),
              static_cast<long long>(graph.nnz()));
  std::printf("environment: %s\n", tilq::environment_summary().c_str());

  tilq::TunerOptions options;
  options.tile_counts = {16, 64, 256, 1024};
  options.kappas = {0.01, 0.1, 1.0, 10.0, 100.0};
  options.timing.budget_seconds = 0.3;
  options.timing.max_iterations = 5;

  using SR = tilq::PlusTimes<double>;
  const tilq::TunerReport report = tilq::tune<SR>(graph, graph, graph, options);

  print_stage("stage 1: tiling & scheduling (no co-iteration)",
              report.stage_tiling);
  print_stage("stage 2: co-iteration factor kappa", report.stage_coiteration);
  print_stage("stage 3: accumulator marker width", report.stage_accumulator);

  std::printf("\nbest: %.2f ms  %s\n", report.best_ms,
              report.best.describe().c_str());
  return 0;
}
