// The full analytics tour: every graph algorithm in tilq on one graph —
// components, BFS (direct and linear-algebraic), triangles, k-truss,
// k-core, betweenness, PageRank. Shows how much of graph analytics reduces
// to the masked sparse kernels the paper studies.
//
// Usage: graph_analytics [graph-name] [scale]   (default as-Skitter 0.2)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tilq/tilq.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "as-Skitter";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;

  const tilq::GraphMatrix graph =
      tilq::symmetrize(tilq::make_collection_graph(name, scale));
  const auto stats = tilq::compute_stats(graph);
  std::printf("== %s (n=%lld, undirected edges=%lld, max degree=%lld) ==\n\n",
              name.c_str(), static_cast<long long>(stats.rows),
              static_cast<long long>(stats.nnz / 2),
              static_cast<long long>(stats.max_row_nnz));

  // Connectivity.
  const auto comps = tilq::connected_components(graph);
  std::printf("components:  %lld (largest %lld vertices)\n",
              static_cast<long long>(comps.count),
              static_cast<long long>(comps.largest_size));

  // Traversal, both formulations.
  const std::int64_t source = tilq::largest_component_member(graph);
  const auto direct = tilq::bfs(graph, source);
  const auto la = tilq::bfs_linear_algebra(graph, source);
  const auto depth =
      *std::max_element(direct.level.begin(), direct.level.end());
  std::printf("bfs:         depth %lld from vertex %lld (direct: %d push/%d "
              "pull; linear-algebra: %d push/%d pull, levels %s)\n",
              static_cast<long long>(depth), static_cast<long long>(source),
              direct.push_steps, direct.pull_steps, la.push_steps,
              la.pull_steps, direct.level == la.level ? "agree" : "DISAGREE");

  // Triangles and cohesion.
  const auto triangles = tilq::count_triangles(graph);
  const auto cores = tilq::kcore_decomposition(graph);
  const int trussness = tilq::max_truss(graph);
  std::printf("triangles:   %lld\n", static_cast<long long>(triangles));
  std::printf("k-core:      degeneracy %lld\n",
              static_cast<long long>(cores.degeneracy));
  std::printf("k-truss:     max truss %d\n", trussness);

  // Centrality (sampled betweenness to stay fast).
  tilq::BetweennessOptions bc_options;
  bc_options.sources = std::min<std::int64_t>(128, graph.rows());
  const auto bc = tilq::betweenness_centrality(graph, bc_options);
  const auto bc_top = static_cast<std::int64_t>(
      std::max_element(bc.begin(), bc.end()) - bc.begin());
  std::printf("betweenness: top vertex %lld (score %.0f, %lld sources sampled)\n",
              static_cast<long long>(bc_top),
              bc[static_cast<std::size_t>(bc_top)],
              static_cast<long long>(bc_options.sources));

  const auto pr = tilq::pagerank(graph);
  const auto pr_top = static_cast<std::int64_t>(
      std::max_element(pr.rank.begin(), pr.rank.end()) - pr.rank.begin());
  std::printf("pagerank:    top vertex %lld (rank %.5f, %d iterations)\n",
              static_cast<long long>(pr_top),
              pr.rank[static_cast<std::size_t>(pr_top)], pr.iterations);
  return 0;
}
