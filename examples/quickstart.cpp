// Quickstart: the 60-second tour of tilq.
//
//   1. generate a graph (a scaled analogue of a SuiteSparse matrix)
//   2. run the paper's kernel  C = A ⊙ (A × A)  with an explicit Config
//   3. count triangles with it
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "tilq/tilq.hpp"

int main() {
  // 1. A social-network-like graph (hollywood-2009 analogue, small scale).
  const tilq::GraphMatrix graph =
      tilq::make_collection_graph("hollywood-2009", /*scale=*/0.25);
  const auto stats = tilq::compute_stats(graph);
  std::printf("graph: n=%lld nnz=%lld max_degree=%lld mean_degree=%.1f\n",
              static_cast<long long>(stats.rows),
              static_cast<long long>(stats.nnz),
              static_cast<long long>(stats.max_row_nnz), stats.mean_row_nnz);

  // 2. The masked product with the paper's three performance dimensions
  //    spelled out. Every field has a sensible default; this shows them all.
  tilq::Config config;
  config.tiling = tilq::Tiling::kFlopBalanced;        // dimension 1: tiling
  config.schedule = tilq::Schedule::kDynamic;         //   ... and scheduling
  config.num_tiles = 0;                               //   0 = 2 x threads
  config.strategy = tilq::MaskStrategy::kHybrid;      // dimension 2: iteration
  config.coiteration_factor = 1.0;                    //   κ from Fig 9
  config.accumulator = tilq::AccumulatorKind::kHash;  // dimension 3: accumulator
  config.marker_width = tilq::MarkerWidth::k32;       //   Fig 13 sweet spot
  config.reset = tilq::ResetPolicy::kMarker;          //   SS:GB-style reset

  using Semiring = tilq::PlusPair<std::int64_t>;
  const auto a = tilq::convert_values<std::int64_t>(graph);
  tilq::ExecutionStats exec;
  const auto c = tilq::masked_spgemm<Semiring>(a, a, a, config, exec);
  std::printf("masked-SpGEMM [%s]\n", config.describe().c_str());
  std::printf("  output nnz=%lld tiles=%lld compute=%.2f ms\n",
              static_cast<long long>(exec.output_nnz),
              static_cast<long long>(exec.tiles), exec.compute_ms);

  // 3. Triangle counting = the same kernel plus a reduction.
  const std::int64_t triangles =
      tilq::count_triangles(graph, tilq::TriangleMethod::kSandia, config);
  std::printf("triangles: %lld\n", static_cast<long long>(triangles));
  return 0;
}
