// Matrix Market workflow: export any collection analogue as a .mtx file, or
// inspect an existing .mtx (e.g. a real SuiteSparse download) and run the
// paper's kernel on it. This is how the benchmarks can be re-run on the
// genuine Table-I matrices.
//
// Usage:
//   mtx_tool export <collection-name> <out.mtx> [scale]
//   mtx_tool inspect <file.mtx>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tilq/tilq.hpp"

namespace {

int export_graph(const std::string& name, const std::string& path, double scale) {
  const tilq::GraphMatrix graph = tilq::make_collection_graph(name, scale);
  tilq::write_matrix_market_file(path, graph);
  std::printf("wrote %s analogue (n=%lld, nnz=%lld) to %s\n", name.c_str(),
              static_cast<long long>(graph.rows()),
              static_cast<long long>(graph.nnz()), path.c_str());
  return 0;
}

int inspect(const std::string& path) {
  const auto graph = tilq::read_matrix_market_file(path);
  const auto stats = tilq::compute_stats(graph);
  std::printf("%s:\n", path.c_str());
  std::printf("  shape        %lld x %lld\n", static_cast<long long>(stats.rows),
              static_cast<long long>(stats.cols));
  std::printf("  nnz          %lld\n", static_cast<long long>(stats.nnz));
  std::printf("  row nnz      mean=%.2f stddev=%.2f p99=%lld max=%lld\n",
              stats.mean_row_nnz, stats.row_nnz_stddev,
              static_cast<long long>(stats.p99_row_nnz),
              static_cast<long long>(stats.max_row_nnz));
  std::printf("  empty rows   %lld\n", static_cast<long long>(stats.empty_rows));

  if (stats.rows == stats.cols && stats.nnz > 0) {
    using SR = tilq::PlusTimes<double>;
    tilq::Config config;
    tilq::ExecutionStats exec;
    tilq::WallTimer timer;
    const auto c = tilq::masked_spgemm<SR>(graph, graph, graph, config, exec);
    std::printf("  C = A .* (A x A): nnz=%lld in %.1f ms [%s]\n",
                static_cast<long long>(c.nnz()), timer.milliseconds(),
                config.describe().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "export") == 0) {
    const double scale = argc > 4 ? std::atof(argv[4]) : 0.25;
    return export_graph(argv[2], argv[3], scale);
  }
  if (argc == 3 && std::strcmp(argv[1], "inspect") == 0) {
    return inspect(argv[2]);
  }
  // No arguments: self-demo through a temp file so the example always runs.
  const std::string demo = "/tmp/tilq_demo_gap_road.mtx";
  if (export_graph("GAP-road", demo, 0.2) != 0) {
    return 1;
  }
  return inspect(demo);
}
